// Vettool and standalone drivers for the flmlint suite. Both produce
// the same diagnostics; they differ only in how the package graph and
// its type information arrive:
//
//   - RunVet implements the `go vet -vettool` protocol (the same
//     contract x/tools' unitchecker speaks): cmd/go hands us a JSON
//     config per package with file lists and compiler export data for
//     every import, we type-check against that export data and print
//     findings to stderr.
//   - RunStandalone shells out to `go list -deps -export -json`, which
//     builds the same export data through the go build cache, then
//     checks every non-dependency package it returned.
//
// Keeping both lets `make lint` use the vet integration (per-package
// caching, -vettool UX) while `go run ./cmd/flmlint ./...` works
// anywhere without vet in the loop, e.g. for bisecting a finding.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
)

// vetConfig mirrors the JSON cmd/go writes for a vettool invocation
// (see cmd/go/internal/work's vetConfig). Fields we do not consume are
// omitted; unknown fields are ignored by encoding/json.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// RunVet processes one vet config file and returns the process exit
// code (0 clean, 2 findings were printed to stderr, 1 internal error).
func RunVet(cfgFile string, analyzers []*Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(stderr, "flmlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "flmlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// We compute no cross-package facts, but cmd/go expects the vetx
	// output file of every unit to exist so downstream units can read
	// it; write an empty one before anything can fail.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(stderr, "flmlint: writing vetx: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// The path has already been mapped through ImportMap below.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	files, pkg, info, err := CheckFiles(fset, cfg.ImportPath, cfg.GoFiles, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "flmlint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags := RunAnalyzers(fset, files, pkg, info, analyzers)
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// listPackage is the subset of `go list -json` output the standalone
// driver consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// RunStandalone loads the packages matching patterns via the go
// command and runs the analyzers over each. Diagnostics go to stderr;
// the return value is a process exit code.
func RunStandalone(patterns []string, analyzers []*Analyzer, stderr io.Writer) int {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(stderr, "flmlint: go list: %v\n", err)
		return 1
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(stderr, "flmlint: decoding go list output: %v\n", err)
			return 1
		}
		if p.Error != nil {
			fmt.Fprintf(stderr, "flmlint: %s: %s\n", p.ImportPath, p.Error.Err)
			return 1
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			cp := p
			targets = append(targets, &cp)
		}
	}

	fset := token.NewFileSet()
	compilerImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	exit := 0
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		filenames := make([]string, len(p.GoFiles))
		for i, f := range p.GoFiles {
			filenames[i] = p.Dir + string(os.PathSeparator) + f
		}
		goVersion := ""
		if p.Module != nil && p.Module.GoVersion != "" {
			goVersion = "go" + p.Module.GoVersion
		}
		files, pkg, info, err := CheckFiles(fset, p.ImportPath, filenames, imp, goVersion)
		if err != nil {
			fmt.Fprintf(stderr, "flmlint: typecheck %s: %v\n", p.ImportPath, err)
			if exit == 0 {
				exit = 1
			}
			continue
		}
		for _, d := range RunAnalyzers(fset, files, pkg, info, analyzers) {
			fmt.Fprintf(stderr, "%s\n", d)
			exit = 2
		}
	}
	return exit
}
