package main

import (
	"fmt"
	"io"
	"os"
	"time"

	"flm/internal/obs"
)

// Live observability wiring: the -obs-listen flag (env fallback
// FLM_OBS_LISTEN) starts the stdlib HTTP endpoint from internal/obs
// serving /metrics, /healthz, /progress, and /debug/pprof for the
// duration of a run/all/chaos/bench invocation, and FLM_OBS_INTERVAL
// enables the periodic stderr progress line. Both are opt-in; with
// neither set, startObs returns a nil session without allocating or
// starting a goroutine (guard-tested in obslisten_test.go), preserving
// the engine's zero-cost-when-disabled contract.

// ObsListenEnv is the environment fallback for the -obs-listen flag.
const ObsListenEnv = "FLM_OBS_LISTEN"

// ObsIntervalEnv enables the periodic stderr progress line; its value
// is a time.ParseDuration interval (e.g. "10s").
const ObsIntervalEnv = "FLM_OBS_INTERVAL"

// obsListenTarget resolves the listen address: the flag wins, then
// FLM_OBS_LISTEN, then "" (no endpoint).
func obsListenTarget(flagVal string) string {
	if flagVal != "" {
		return flagVal
	}
	return os.Getenv(ObsListenEnv)
}

// obsSession is one command's live observability: the HTTP endpoint,
// the stderr progress reporter, and (when no -trace file is active) a
// discard tracer that switches the engine onto its instrumented paths
// so counters, spans, and progress tick for the endpoint to serve. A
// nil *obsSession is valid and inert — startObs returns nil whenever
// nothing was requested — so callers always `defer sess.stop()`.
type obsSession struct {
	server       *obs.Server
	stopReporter func()
	restore      func() // uninstalls the discard tracer, nil if a real tracer was already on
}

// startObs starts the requested observability for one command. listen
// is the resolved -obs-listen address ("" = no endpoint); the progress
// reporter is driven purely by FLM_OBS_INTERVAL. With neither set it
// returns (nil, nil) having done no work at all.
//
// The metrics registry and the engine's span emission are gated on one
// switch — an installed tracer — so when the caller did not also pass
// -trace, startObs installs a tracer writing to io.Discard: every span
// is formatted and dropped, but the counters, histograms, and progress
// gauges the endpoint serves all tick. Report output is unaffected
// either way (tracing never touches stdout), so report.txt stays
// byte-identical with observability on or off.
func startObs(listen string) (*obsSession, error) {
	interval := os.Getenv(ObsIntervalEnv)
	if listen == "" && interval == "" {
		return nil, nil
	}
	s := &obsSession{}
	if !obs.Enabled() {
		s.restore = obs.SetTracer(obs.NewTracer(io.Discard))
	}
	obs.ResetProgress()
	if listen != "" {
		srv, err := obs.StartServer(listen)
		if err != nil {
			s.stop()
			return nil, fmt.Errorf("obs-listen: %w", err)
		}
		s.server = srv
		// The notice goes to stderr: stdout carries the report, which
		// must stay byte-identical with observability on or off.
		fmt.Fprintf(os.Stderr, "flm: observability on http://%s (/metrics /healthz /progress /debug/pprof)\n", srv.Addr())
	}
	if interval != "" {
		d, err := time.ParseDuration(interval)
		if err != nil || d <= 0 {
			s.stop()
			return nil, fmt.Errorf("obs: invalid %s=%q (want a positive duration like 10s)", ObsIntervalEnv, interval)
		}
		s.stopReporter = obs.StartProgressReporter(os.Stderr, d)
	}
	return s, nil
}

// stop tears the session down in reverse order: reporter (prints its
// final line), endpoint, then the discard tracer. No-op on nil.
func (s *obsSession) stop() {
	if s == nil {
		return
	}
	if s.stopReporter != nil {
		s.stopReporter()
	}
	if s.server != nil {
		s.server.Close()
	}
	if s.restore != nil {
		s.restore()
	}
}
