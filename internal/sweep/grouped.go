package sweep

import (
	"sort"
	"sync"
)

// Grouped is Map for sweeps whose trials cluster into groups that share
// expensive setup: sizes[g] trials belong to group g, setup(g) is
// computed at most once (lazily, when the first trial of the group is
// claimed) and handed to every fn call of that group. Results come back
// as out[group][indexWithinGroup], in the given order.
//
// This is the batch counterpart of the "each trial builds everything
// itself" contract of Map: graph covers, routing tables, iterate tables,
// and device-builder closures that are identical across a group's trials
// are built once per group instead of once per trial, while the trials
// themselves still fan out across Workers() goroutines with Map's
// ordering and first-error guarantees (the reported error is the one from
// the lowest flat trial index).
//
// setup must return a value that is safe for the group's trials to share
// concurrently (read-only, or internally synchronized); it runs on a
// worker goroutine and must not fail — encode setup errors in S and
// surface them from fn so they participate in first-error ordering.
// fn(g, i, s) receives the group index, the trial's index within the
// group, and the group's setup value.
func Grouped[S, T any](sizes []int, setup func(g int) S, fn func(g, i int, s S) (T, error)) ([][]T, error) {
	starts := make([]int, len(sizes)+1)
	for g, sz := range sizes {
		if sz < 0 {
			sz = 0
		}
		starts[g+1] = starts[g] + sz
	}
	total := starts[len(sizes)]
	onces := make([]sync.Once, len(sizes))
	vals := make([]S, len(sizes))
	flat, err := Map(total, func(i int) (T, error) {
		g := sort.SearchInts(starts[1:], i+1)
		onces[g].Do(func() { vals[g] = setup(g) })
		return fn(g, i-starts[g], vals[g])
	})
	out := make([][]T, len(sizes))
	for g := range sizes {
		out[g] = flat[starts[g]:starts[g+1]]
	}
	return out, err
}
