package lint

// Fixture harness in the style of x/tools' analysistest, on the
// standard library alone: each fixture package lives under
// testdata/src/<importpath> and marks every line that must produce a
// finding with a trailing
//
//	// want `regexp`
//
// comment (multiple backquoted patterns allowed). The harness
// type-checks the fixture — imports that resolve under testdata/src are
// loaded as fixtures themselves (e.g. the flm/internal/obs stub),
// everything else comes from the source importer — runs the analyzers
// under test, and then requires an exact match: every diagnostic must
// satisfy a want on its line, and every want must be consumed.

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loadFixture type-checks the fixture package at testdata/src/<importPath>.
func loadFixture(t *testing.T, fset *token.FileSet, importPath string) *fixturePkg {
	t.Helper()
	base := filepath.Join("testdata", "src")
	loaded := map[string]*fixturePkg{}
	stdlib := SourceImporter(fset)

	var load func(path string) (*fixturePkg, error)
	imp := importerFunc(func(path string) (*types.Package, error) {
		if _, err := os.Stat(filepath.Join(base, path)); err == nil {
			p, err := load(path)
			if err != nil {
				return nil, err
			}
			return p.pkg, nil
		}
		return stdlib.Import(path)
	})
	load = func(path string) (*fixturePkg, error) {
		if p, ok := loaded[path]; ok {
			return p, nil
		}
		dir := filepath.Join(base, path)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var filenames []string
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".go") {
				filenames = append(filenames, filepath.Join(dir, e.Name()))
			}
		}
		files, pkg, info, err := CheckFiles(fset, path, filenames, imp, "")
		if err != nil {
			return nil, err
		}
		p := &fixturePkg{files: files, pkg: pkg, info: info}
		loaded[path] = p
		return p, nil
	}

	p, err := load(importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", importPath, err)
	}
	return p
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantPatternRe = regexp.MustCompile("`([^`]+)`")

// parseWants extracts the `// want ...` expectations from the fixture's
// comments; the expectation is anchored to the comment's line.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				pats := wantPatternRe.FindAllStringSubmatch(c.Text[idx:], -1)
				if len(pats) == 0 {
					t.Fatalf("%s:%d: want comment with no backquoted pattern", pos.Filename, pos.Line)
				}
				for _, m := range pats {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// checkExpectations pairs diagnostics against wants one-to-one. The
// pattern is matched against "message [analyzer]".
func checkExpectations(t *testing.T, diags []Diagnostic, wants []*expectation) {
	t.Helper()
	for _, d := range diags {
		full := d.Message + " [" + d.Analyzer + "]"
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(full) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func runFixture(t *testing.T, importPath string, analyzers []*Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	p := loadFixture(t, fset, importPath)
	diags := RunAnalyzers(fset, p.files, p.pkg, p.info, analyzers)
	checkExpectations(t, diags, parseWants(t, fset, p.files))
}
