// Package obs is the engine's unified observability layer: a span/event
// tracer with goroutine-safe JSONL export plus a registry of atomic
// counters, gauges, and histograms (metrics.go). The performance-critical
// subsystems — the simulator executor, the run/splice caches, the
// parallel sweep pool, and the chaos harness — emit spans through this
// package so a single trace file explains where a workload's time,
// cache traffic, and chain structure went; `flm stats` replays such a
// file into a per-subsystem summary.
//
// The cardinal rule is zero overhead while disabled. No tracer is
// installed by default; Enabled is one atomic pointer load, StartSpan
// returns a nil *Span that every method treats as a no-op, and hot call
// sites guard attribute construction behind Enabled so the disabled path
// allocates nothing (verified by BenchmarkObsDisabled in internal/sim).
// Instrumentation must therefore follow the pattern
//
//	if obs.Enabled() {
//	    ctx, sp := obs.StartSpan(ctx, "sim.execute", obs.Int("rounds", n))
//	    defer sp.End()
//	    ...
//	}
//
// rather than building attributes unconditionally.
//
// Export format: one JSON object per line. Spans are written when they
// End (so a trace is ordered by completion), events when they fire, and
// Close appends a final metrics snapshot:
//
//	{"t":"span","id":3,"par":1,"name":"sim.execute","start_us":12,"dur_us":340,"attrs":{"rounds":8}}
//	{"t":"event","id":7,"par":0,"name":"chaos.trial","at_us":99,"attrs":{"outcome":"green"}}
//	{"t":"metrics","at_us":1234,"counters":{"sim.cache.hit":41},...}
//
// Timestamps are microseconds since the tracer was installed, taken from
// Go's monotonic clock, so span math is immune to wall-clock steps.
// Every line is assembled in a scratch buffer and handed to the
// underlying writer in exactly one Write under the tracer's lock, so
// concurrent spans (parallel sweep workers) can never interleave within
// a line.
package obs

import (
	"bufio"
	"context"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// attrKind discriminates Attr payloads without boxing values in an
// interface (which would allocate at every call site).
type attrKind uint8

const (
	kindStr attrKind = iota
	kindInt
	kindBool
	kindF64
)

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key  string
	str  string
	num  int64
	f    float64
	kind attrKind
}

// Str makes a string attribute.
func Str(key, val string) Attr { return Attr{Key: key, str: val, kind: kindStr} }

// Int makes an integer attribute.
func Int(key string, val int) Attr { return Attr{Key: key, num: int64(val), kind: kindInt} }

// Int64 makes a 64-bit integer attribute.
func Int64(key string, val int64) Attr { return Attr{Key: key, num: val, kind: kindInt} }

// Bool makes a boolean attribute.
func Bool(key string, val bool) Attr {
	n := int64(0)
	if val {
		n = 1
	}
	return Attr{Key: key, num: n, kind: kindBool}
}

// F64 makes a float attribute.
func F64(key string, val float64) Attr { return Attr{Key: key, f: val, kind: kindF64} }

// Tracer writes span/event records as JSON lines. Create one with
// NewTracer, install it with SetTracer, and Close it when the command
// finishes to flush buffered lines and append the metrics snapshot.
type Tracer struct {
	start time.Time
	ids   atomic.Uint64

	mu  sync.Mutex
	bw  *bufio.Writer
	buf []byte // per-record scratch, reused under mu
	err error  // first write error; subsequent records are dropped
}

// NewTracer returns a tracer exporting to w. The tracer buffers
// internally; the caller owns w's lifetime but must Close the tracer
// (not just w) to see every line.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{start: time.Now(), bw: bufio.NewWriterSize(w, 1<<16)}
}

// now is the record timestamp: microseconds since the tracer started,
// from the monotonic clock.
func (t *Tracer) now() int64 { return int64(time.Since(t.start) / time.Microsecond) }

// Err returns the first error the underlying writer reported, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close appends the default metrics registry's snapshot as a final
// "metrics" line and flushes. It does not close the underlying writer.
func (t *Tracer) Close() error {
	t.writeMetrics(Metrics.Snapshot())
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		t.err = t.bw.Flush()
	}
	return t.err
}

// writeRecord assembles one line under the lock and writes it with a
// single Write call.
func (t *Tracer) writeRecord(build func(buf []byte) []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.buf = build(t.buf[:0])
	t.buf = append(t.buf, '\n')
	if _, err := t.bw.Write(t.buf); err != nil {
		t.err = err
	}
}

// active is the installed tracer; nil means tracing is off, and every
// entry point of this package collapses to an atomic load and a branch.
var active atomic.Pointer[Tracer]

// SetTracer installs t as the process-wide tracer (nil uninstalls) and
// returns a function restoring the previous one, for defer-style use in
// tests and the CLI.
func SetTracer(t *Tracer) (restore func()) {
	prev := active.Swap(t)
	return func() { active.Store(prev) }
}

// Active returns the installed tracer, or nil.
func Active() *Tracer { return active.Load() }

// Enabled reports whether a tracer is installed. Hot paths branch on
// this before building any attributes.
func Enabled() bool { return active.Load() != nil }

// Span is one timed, named region. A nil *Span is valid and inert —
// StartSpan returns nil whenever tracing is disabled — so callers never
// need a second enabled-check before End or SetAttrs. A span belongs to
// the goroutine that started it; End must be called exactly once, and
// SetAttrs must not race with End.
type Span struct {
	t      *Tracer
	id     uint64
	parent uint64
	name   string
	start  int64
	attrs  []Attr
}

// ctxKey carries the current span through a context for nesting.
type ctxKey struct{}

// StartSpan begins a span named name, child of the span in ctx (if any),
// and returns a derived context carrying it. With no tracer installed it
// returns (ctx, nil) untouched.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	t := active.Load()
	if t == nil {
		return ctx, nil
	}
	var parent uint64
	if p, ok := ctx.Value(ctxKey{}).(*Span); ok && p != nil {
		parent = p.id
	}
	s := &Span{t: t, id: t.ids.Add(1), parent: parent, name: name, start: t.now()}
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// SetAttrs appends attributes to the span; no-op on nil. It returns the
// span so call sites can chain it into a defer.
func (s *Span) SetAttrs(attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, attrs...)
	return s
}

// End writes the span's record; no-op on nil. The tracer that started
// the span keeps receiving it even if the global tracer changed
// meanwhile, so spans never land in a file they did not start in.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := s.t.now()
	s.t.writeRecord(func(buf []byte) []byte {
		buf = append(buf, `{"t":"span","id":`...)
		buf = appendUint(buf, s.id)
		buf = append(buf, `,"par":`...)
		buf = appendUint(buf, s.parent)
		buf = append(buf, `,"name":`...)
		buf = appendJSONString(buf, s.name)
		buf = append(buf, `,"start_us":`...)
		buf = appendInt(buf, s.start)
		buf = append(buf, `,"dur_us":`...)
		buf = appendInt(buf, end-s.start)
		buf = appendAttrs(buf, s.attrs)
		return append(buf, '}')
	})
}

// Event writes a point-in-time record named name, attributed to the span
// in ctx (if any). No-op with no tracer installed.
func Event(ctx context.Context, name string, attrs ...Attr) {
	t := active.Load()
	if t == nil {
		return
	}
	var parent uint64
	if p, ok := ctx.Value(ctxKey{}).(*Span); ok && p != nil {
		parent = p.id
	}
	id := t.ids.Add(1)
	at := t.now()
	t.writeRecord(func(buf []byte) []byte {
		buf = append(buf, `{"t":"event","id":`...)
		buf = appendUint(buf, id)
		buf = append(buf, `,"par":`...)
		buf = appendUint(buf, parent)
		buf = append(buf, `,"name":`...)
		buf = appendJSONString(buf, name)
		buf = append(buf, `,"at_us":`...)
		buf = appendInt(buf, at)
		buf = appendAttrs(buf, attrs)
		return append(buf, '}')
	})
}

// appendAttrs renders `,"attrs":{...}` (nothing when attrs is empty).
// A duplicate key keeps both entries; consumers take the last, which
// matches "later SetAttrs wins".
func appendAttrs(buf []byte, attrs []Attr) []byte {
	if len(attrs) == 0 {
		return buf
	}
	buf = append(buf, `,"attrs":{`...)
	for i, a := range attrs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendJSONString(buf, a.Key)
		buf = append(buf, ':')
		switch a.kind {
		case kindStr:
			buf = appendJSONString(buf, a.str)
		case kindInt:
			buf = appendInt(buf, a.num)
		case kindBool:
			if a.num != 0 {
				buf = append(buf, "true"...)
			} else {
				buf = append(buf, "false"...)
			}
		case kindF64:
			buf = appendFloat(buf, a.f)
		}
	}
	return append(buf, '}')
}
