# Verification gates (see ROADMAP.md).
#
# verify       tier-1: build + full test suite + flmlint
# lint         build the flmlint vettool and run it over every package
#              via `go vet -vettool` (per-package result caching); the
#              four analyzers machine-check determinism, fingerprint
#              coverage, zero-cost observability, and buffer ownership
#              (see internal/lint)
# verify-race  extended: vet + race-enabled tests; FLM_WORKERS forces the
#              parallel sweep path so the race detector sees real
#              concurrency even on single-core runners
# bench        refresh the BENCH_<date>.json perf snapshot
# bench-smoke  quick bench (1 run/entry) diffed against the committed
#              baseline, report-only — the CI perf canary
# bench-gate   hard allocs/B gate on the two hot-path micros
#              (micro:timedsim-tick, micro:eig-resolve); allocation
#              counts carry only a few percent of GC jitter, so unlike
#              ns/op they gate reliably even on shared runners
# cache-warm   the cross-process reuse smoke: run the full experiment
#              suite twice against one FLM_CACHE_DIR, require the second
#              run's report byte-identical to the first and its disk
#              hit-rate (disk hits / L1 misses) to clear a pinned floor
# chaos        the CI smoke run: randomized adversaries, pinned seed
# chaos-async  the adversarial-asynchrony smoke: delay schedules plus
#              initially-dead faults, pinned to its own seed/trial pair
# trace-smoke  run E1 under -trace, fold the JSONL with flm stats, and
#              fail if the summary comes out empty — the end-to-end
#              check on the observability layer
# trace-diff   the behavioral regression gate: a fresh deterministic E1
#              trace (cache off, one worker) must diff clean against the
#              committed reference (-notiming: wall-time shares are
#              machine noise), and the committed regressed fixture must
#              trip the exit-3 gate — proving the gate both passes good
#              traces and fails bad ones
# obs-smoke    start `flm all -obs-listen` and curl /healthz, /metrics
#              (expecting Prometheus flm_ series), and /progress while
#              the run is live

GO ?= go
FLMLINT ?= bin/flmlint
RACE_WORKERS ?= 4
CHAOS_SEED ?= 1
CHAOS_TRIALS ?= 64
ASYNC_CHAOS_SEED ?= 7
ASYNC_CHAOS_TRIALS ?= 48
BENCH_BASELINE ?= BENCH_2026-08-07.json
BENCH_GATE_ENTRIES ?= micro:timedsim-tick,micro:eig-resolve,micro:async-sched,micro:cache-evict
BENCH_GATE_THRESHOLD ?= 10
TRACE_FILE ?= /tmp/flm-trace-smoke.jsonl
CACHE_WARM_DIR ?= /tmp/flm-cache-warm
CACHE_WARM_MIN_RATE ?= 90
TRACE_REF ?= cmd/flm/testdata/e1_reference_trace.jsonl
TRACE_REGRESSED ?= cmd/flm/testdata/e1_regressed_trace.jsonl
TRACE_DIFF_FILE ?= /tmp/flm-trace-diff.jsonl
TRACE_DIFF_THRESHOLD ?= 5
OBS_SMOKE_ADDR ?= 127.0.0.1:9177

.PHONY: verify verify-race lint bench bench-smoke bench-gate cache-warm chaos chaos-async trace-smoke trace-diff obs-smoke

verify: lint
	$(GO) build ./...
	$(GO) test ./...

# The vettool is rebuilt every time (it is one small package; go build
# is a no-op when nothing changed) so `make lint` can never run a stale
# binary. go vet hashes the binary into its action IDs, so per-package
# results are cached across runs until the analyzers change.
lint:
	@mkdir -p $(dir $(FLMLINT))
	$(GO) build -o $(FLMLINT) ./cmd/flmlint
	$(GO) vet -vettool=$(FLMLINT) ./...

verify-race: verify
	$(GO) vet ./...
	FLM_WORKERS=$(RACE_WORKERS) $(GO) test -race ./...

bench:
	$(GO) run ./cmd/flm bench

bench-smoke:
	$(GO) run ./cmd/flm bench -runs 1 -o /tmp/flm-bench-smoke.json -compare $(BENCH_BASELINE)

bench-gate:
	$(GO) run ./cmd/flm bench -runs 1 -entries $(BENCH_GATE_ENTRIES) -o /tmp/flm-bench-gate.json -compare $(BENCH_BASELINE) -threshold $(BENCH_GATE_THRESHOLD)

# Both runs are cold processes (go run spawns a fresh binary); only the
# blob store under CACHE_WARM_DIR carries state across. The diff proves
# disk-served results are byte-identical; the -mindiskrate gate (exit 3
# below the floor) proves the second run actually came off disk rather
# than recomputing.
cache-warm:
	rm -rf $(CACHE_WARM_DIR)
	FLM_CACHE_DIR=$(CACHE_WARM_DIR) $(GO) run ./cmd/flm all > /tmp/flm-cache-warm-cold.txt
	FLM_CACHE_DIR=$(CACHE_WARM_DIR) $(GO) run ./cmd/flm all -trace /tmp/flm-cache-warm.jsonl > /tmp/flm-cache-warm-warm.txt
	diff /tmp/flm-cache-warm-cold.txt /tmp/flm-cache-warm-warm.txt
	$(GO) run ./cmd/flm stats -mindiskrate $(CACHE_WARM_MIN_RATE) /tmp/flm-cache-warm.jsonl > /tmp/flm-cache-warm-stats.txt
	@tail -1 /tmp/flm-cache-warm-stats.txt

chaos:
	$(GO) run ./cmd/flm chaos -seed $(CHAOS_SEED) -trials $(CHAOS_TRIALS)

chaos-async:
	$(GO) run ./cmd/flm chaos -async -deadset -seed $(ASYNC_CHAOS_SEED) -trials $(ASYNC_CHAOS_TRIALS)

trace-smoke:
	$(GO) run ./cmd/flm run -trace $(TRACE_FILE) E1 > /dev/null
	$(GO) run ./cmd/flm stats $(TRACE_FILE) | tee /tmp/flm-trace-smoke.txt
	@grep -q "hit rate" /tmp/flm-trace-smoke.txt || { echo "trace-smoke: no cache summary in flm stats output" >&2; exit 1; }
	@grep -q "core.chain.link" /tmp/flm-trace-smoke.txt || { echo "trace-smoke: no chain-link spans in flm stats output" >&2; exit 1; }

# The fresh trace is produced under the same pinned conditions as the
# committed reference (caches off, one worker) so every compared family
# — counters, span counts, cache rates, traffic — is deterministic;
# -notiming drops the wall-time-share family, which is machine noise.
trace-diff:
	$(GO) build -o bin/flm ./cmd/flm
	FLM_RUNCACHE=off FLM_CACHE_DIR=off FLM_WORKERS=1 bin/flm run -trace $(TRACE_DIFF_FILE) E1 > /dev/null
	bin/flm stats -diff $(TRACE_DIFF_FILE) $(TRACE_DIFF_FILE)
	bin/flm stats -diff -notiming -threshold $(TRACE_DIFF_THRESHOLD) $(TRACE_REF) $(TRACE_DIFF_FILE)
	@bin/flm stats -diff -notiming $(TRACE_REF) $(TRACE_REGRESSED) > /tmp/flm-trace-diff-gate.txt; \
	status=$$?; \
	test $$status -eq 3 || { echo "trace-diff: injected regression exited $$status, want 3" >&2; cat /tmp/flm-trace-diff-gate.txt >&2; exit 1; }; \
	echo "trace-diff: injected regression tripped the exit-3 gate as expected"

obs-smoke:
	$(GO) build -o bin/flm ./cmd/flm
	@set -e; \
	bin/flm all -obs-listen $(OBS_SMOKE_ADDR) > /tmp/flm-obs-smoke-report.txt 2>/tmp/flm-obs-smoke-err.txt & pid=$$!; \
	up=0; for i in $$(seq 1 100); do \
	  if curl -fsS http://$(OBS_SMOKE_ADDR)/healthz >/dev/null 2>&1; then up=1; break; fi; \
	  sleep 0.05; done; \
	test $$up -eq 1 || { echo "obs-smoke: /healthz never came up" >&2; cat /tmp/flm-obs-smoke-err.txt >&2; kill $$pid 2>/dev/null; exit 1; }; \
	curl -fsS http://$(OBS_SMOKE_ADDR)/metrics > /tmp/flm-obs-smoke-metrics.txt; \
	grep -q '^flm_' /tmp/flm-obs-smoke-metrics.txt || { echo "obs-smoke: /metrics served no flm_ series" >&2; kill $$pid 2>/dev/null; exit 1; }; \
	curl -fsS http://$(OBS_SMOKE_ADDR)/progress > /tmp/flm-obs-smoke-progress.json; \
	wait $$pid; \
	echo "obs-smoke: /healthz, /metrics ($$(grep -c '^flm_' /tmp/flm-obs-smoke-metrics.txt) samples), and /progress all served during a live run"
