package chaos

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"
)

// pinnedSeed is the seed used by the CI smoke job and E18; the tests
// below pin its behavior so a panel change that silently flips the
// adequate/inadequate balance is caught here, not in CI. It aliases the
// exported smoke constant so the package cannot drift from the values
// CI and internal/eval assert against.
const pinnedSeed = SmokeSeed

// TestScheduleDeterminism: a schedule is a pure function of
// (seed, index) — regenerating it must give a deep-equal value.
func TestScheduleDeterminism(t *testing.T) {
	for i := 0; i < 128; i++ {
		a := NewSchedule(pinnedSeed, i)
		b := NewSchedule(pinnedSeed, i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d schedules diverge:\n%+v\n%+v", i, a, b)
		}
	}
	// Different seeds must actually change the stream.
	diff := 0
	for i := 0; i < 32; i++ {
		if !reflect.DeepEqual(NewSchedule(1, i), NewSchedule(2, i)) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 1 and 2 generated identical schedules")
	}
}

// TestRunSchedulePure: executing the same schedule twice yields the
// same outcome, byte for byte — the foundation for seed reproduction
// and for the shrinker's re-execution checks.
func TestRunSchedulePure(t *testing.T) {
	for i := 0; i < 48; i++ {
		s := NewSchedule(pinnedSeed, i)
		a, b := RunSchedule(s), RunSchedule(s)
		if errText(a.Violation) != errText(b.Violation) || errText(a.EngineErr) != errText(b.EngineErr) {
			t.Fatalf("trial %d outcomes diverge: %+v vs %+v", i, a, b)
		}
	}
}

func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestPanelSeed1 pins the acceptance criterion: with the documented
// seed, every adequate configuration stays green, the inadequate ones
// produce violations, and each violation shrinks to a schedule that
// still violates with at most the reported number of faulty actions.
func TestPanelSeed1(t *testing.T) {
	rep, err := Run(context.Background(), Config{Seed: pinnedSeed, Trials: SmokeTrials})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("unexpected failures:\n%s", rep.Render())
	}
	if len(rep.Expected) == 0 {
		t.Fatal("no violations on inadequate configurations; the panel lost its teeth")
	}
	for _, f := range rep.Expected {
		if f.Schedule.Adequate {
			t.Errorf("trial %d marked expected on an adequate configuration", f.Trial)
		}
		if f.Shrunk == nil {
			t.Errorf("trial %d violation was not shrunk", f.Trial)
			continue
		}
		if len(f.Shrunk.Actions) > len(f.Schedule.Actions) {
			t.Errorf("trial %d shrink grew: %d > %d actions",
				f.Trial, len(f.Shrunk.Actions), len(f.Schedule.Actions))
		}
		if !violates(*f.Shrunk) {
			t.Errorf("trial %d shrunk schedule no longer violates: %s",
				f.Trial, f.Shrunk.Describe())
		}
	}
}

// TestReproduceFromSeed: each finding must be reproducible from
// nothing but the printed (seed, trial) pair — regenerate the schedule
// and re-run it.
func TestReproduceFromSeed(t *testing.T) {
	rep, err := Run(context.Background(), Config{Seed: pinnedSeed, Trials: SmokeTrials, NoShrink: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range rep.Expected {
		s := NewSchedule(rep.Seed, f.Trial)
		if !reflect.DeepEqual(s, f.Schedule) {
			t.Fatalf("trial %d: regenerated schedule differs from the finding's", f.Trial)
		}
		o := RunSchedule(s)
		if o.Violation == nil || o.Violation.Error() != f.Violation {
			t.Errorf("trial %d did not reproduce: want %q, got %+v", f.Trial, f.Violation, o)
		}
	}
}

// TestReportDeterministicAcrossWorkers: the rendered report is
// identical at any fan-out — schedules derive from (seed, index), never
// from scheduling order.
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		rep, err := Run(context.Background(), Config{
			Seed: pinnedSeed, Trials: 48, Workers: workers, NoShrink: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Render()
	}
	if one, four := render(1), render(4); one != four {
		t.Fatalf("reports diverge across worker counts:\n--- 1 worker ---\n%s--- 4 workers ---\n%s", one, four)
	}
}

// TestShrinkMinimal: the shrinker's fixpoint is 1-minimal — dropping
// any remaining action, or weakening any remaining strategy, loses the
// violation.
func TestShrinkMinimal(t *testing.T) {
	checked := 0
	for i := 0; i < 64 && checked < 3; i++ {
		s := NewSchedule(pinnedSeed, i)
		if s.Adequate || !violates(s) {
			continue
		}
		shrunk, ok := Shrink(s)
		if !ok {
			t.Fatalf("trial %d violates but Shrink disagreed", i)
		}
		for j := range shrunk.Actions {
			cand := shrunk
			cand.Actions = append(append([]Action(nil), shrunk.Actions[:j]...), shrunk.Actions[j+1:]...)
			if violates(cand) {
				t.Errorf("trial %d not 1-minimal: dropping action %d still violates", i, j)
			}
			for _, weaker := range weakerThan[shrunk.Actions[j].Strategy] {
				cand := shrunk
				cand.Actions = append([]Action(nil), shrunk.Actions...)
				cand.Actions[j].Strategy = weaker
				if violates(cand) {
					t.Errorf("trial %d not 1-minimal: weakening action %d to %s still violates",
						i, j, weaker)
				}
			}
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no inadequate violating schedule in the pinned window")
	}
}

// TestShrinkRejectsNonViolating: shrinking a green schedule reports
// ok=false and returns the input unchanged.
func TestShrinkRejectsNonViolating(t *testing.T) {
	for i := 0; i < 64; i++ {
		s := NewSchedule(pinnedSeed, i)
		if violates(s) {
			continue
		}
		shrunk, ok := Shrink(s)
		if ok {
			t.Fatalf("trial %d: Shrink claimed a violation on a green schedule", i)
		}
		if !reflect.DeepEqual(shrunk, s) {
			t.Fatalf("trial %d: Shrink mutated a green schedule", i)
		}
		return
	}
	t.Skip("no green schedule in the pinned window")
}

// TestRunValidation: bad configs are rejected up front.
func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{Seed: 1, Trials: 0}); err == nil {
		t.Fatal("Trials=0 accepted")
	}
	if _, err := Run(context.Background(), Config{Seed: 1, Trials: -3}); err == nil {
		t.Fatal("negative trial count accepted")
	}
}

// TestRunCancellation: cancelling the context surfaces the unfinished
// trials as unexpected findings rather than hanging or dropping them.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, Config{Seed: pinnedSeed, Trials: 16, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("cancelled run reported OK")
	}
	found := false
	for _, f := range rep.Unexpected {
		if strings.Contains(f.Violation, context.Canceled.Error()) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no finding mentions the cancellation: %+v", rep.Unexpected)
	}
}
