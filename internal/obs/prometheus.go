package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition (version 0.0.4) for the registry, serving
// the /metrics endpoint. Rendering reads the live atomics directly —
// Snapshot deliberately drops histogram buckets to keep the trace's
// final metrics line compact, but the exposition format wants the full
// cumulative bucket ladder.

// promName maps a registry series name ("sim.cache.hit") to a valid
// Prometheus metric name ("flm_sim_cache_hit"): the flm_ namespace
// prefix plus every character outside [a-zA-Z0-9_] flattened to '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	b.WriteString("flm_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders every registered series in Prometheus text
// exposition format, sorted by name within each kind. Counters and
// gauges are one sample each; histograms emit the cumulative _bucket
// ladder (upper bound of power-of-two bucket i is 2^i - 1, matching
// Histogram's bit-length bucketing), then _sum and _count. Values are
// read atomically per series; like Snapshot, the view is consistent
// per series, not across series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	for _, c := range counters {
		name := promName(c.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value()); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		name := promName(g.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, g.Value()); err != nil {
			return err
		}
	}
	for _, h := range hists {
		name := promName(h.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		// Cumulative ladder up to the highest non-empty bucket; empty
		// histograms still emit the +Inf bucket so the series parses.
		top := -1
		for i := len(h.buckets) - 1; i >= 0; i-- {
			if h.buckets[i].Load() != 0 {
				top = i
				break
			}
		}
		var cum uint64
		for i := 0; i <= top; i++ {
			cum += h.buckets[i].Load()
			// Bucket i holds values of bit length i: [2^(i-1), 2^i), so
			// its inclusive upper bound is 2^i - 1 (bucket 0 is exactly
			// the value 0). Bucket 64 holds values with the top bit set;
			// its bound 2^64-1 is the uint64 maximum.
			var le uint64
			if i >= 64 {
				le = ^uint64(0)
			} else {
				le = (uint64(1) << i) - 1
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		count := h.count.Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, count, name, h.sum.Load(), name, count); err != nil {
			return err
		}
	}
	return nil
}
