package sim

import (
	"strings"
	"testing"

	"flm/internal/graph"
)

func TestCollectStats(t *testing.T) {
	g := graph.Triangle()
	inputs := map[string]Input{"a": "0", "b": "1", "c": "0"}
	sys, err := NewSystem(g, gossipProtocol(g, 2, inputs))
	if err != nil {
		t.Fatal(err)
	}
	run := MustExecute(sys, 3)
	st := CollectStats(run)
	if st.Rounds != 3 {
		t.Errorf("Rounds = %d", st.Rounds)
	}
	// Gossip devices send on every edge every round: 6 directed edges x
	// 3 rounds.
	if st.Messages != 18 {
		t.Errorf("Messages = %d, want 18", st.Messages)
	}
	if st.Bytes <= 0 || st.MaxPayload <= 0 {
		t.Errorf("Bytes = %d MaxPayload = %d", st.Bytes, st.MaxPayload)
	}
	sum := 0
	for _, m := range st.PerRoundMsgs {
		sum += m
	}
	if sum != st.Messages {
		t.Errorf("per-round messages sum %d != total %d", sum, st.Messages)
	}
	sumB := 0
	for _, b := range st.PerRoundBytes {
		sumB += b
	}
	if sumB != st.Bytes {
		t.Errorf("per-round bytes sum %d != total %d", sumB, st.Bytes)
	}
	if !strings.Contains(st.String(), "messages=18") {
		t.Errorf("String() = %q", st.String())
	}
}

func TestTrace(t *testing.T) {
	g := graph.Line(2)
	sys, err := NewSystem(g, gossipProtocol(g, 1, map[string]Input{"l0": "x", "l1": "y"}))
	if err != nil {
		t.Fatal(err)
	}
	run := MustExecute(sys, 2)
	trace := Trace(run, 5)
	for _, want := range []string{"round 0:", "round 1:", "l0->l1:", "…"} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q:\n%s", want, trace)
		}
	}
	// Unlimited width: no truncation marker.
	if strings.Contains(Trace(run, 0), "…") {
		t.Error("width 0 truncated")
	}
}
