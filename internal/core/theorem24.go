package core

import (
	"fmt"

	"flm/internal/firingsquad"
	"flm/internal/graph"
	"flm/internal/sim"
	"flm/internal/weak"
)

// baseSplice wraps an ordinary (non-spliced) run of G as a pseudo-splice
// so base behaviors can appear as chain links.
func baseSplice(run *sim.Run) *Splice {
	return &Splice{Run: run, Correct: run.G.Names()}
}

// runTriangle executes the all-correct triangle with a uniform input.
func runTriangle(builders map[string]sim.Builder, input sim.Input, rounds int) (*sim.Run, error) {
	g := graph.Triangle()
	p := sim.Protocol{Builders: builders, Inputs: map[string]sim.Input{}}
	for _, name := range g.Names() {
		p.Inputs[name] = input
	}
	sys, err := sim.NewSystem(g, p)
	if err != nil {
		return nil, err
	}
	return sim.Execute(sys, rounds)
}

// ringArcInputs assigns input one to ring nodes 0..2k-1 and zero to
// 2k..4k-1 (the paper's half-and-half assignment).
func ringArcInputs(s *graph.Graph, k int, one, zero sim.Input) map[string]sim.Input {
	inputs := make(map[string]sim.Input, s.N())
	for i := 0; i < s.N(); i++ {
		if i < 2*k {
			inputs[s.Name(i)] = one
		} else {
			inputs[s.Name(i)] = zero
		}
	}
	return inputs
}

// chooseK returns the smallest multiple of 3 strictly greater than
// horizonRound — the paper's "choose k > t'/δ, a multiple of 3" with
// δ = one round.
func chooseK(horizonRound int) int {
	k := horizonRound + 1
	for k%3 != 0 {
		k++
	}
	return k
}

// WeakAgreementRing mechanizes Theorem 2 for the triangle: weak agreement
// devices A, B, C are run on the all-0 and all-1 correct triangles to
// find the decision horizon t'; they are then installed on the 4k-ring
// covering (k > t', one semicircle input 1, the other 0). Every adjacent
// pair of ring nodes splices into a correct one-fault behavior of the
// triangle, so agreement chains all 4k choices together — but Lemma 3
// (verified on the run: information moves one edge per round) forces the
// middle of the 0-arc to choose 0 and the middle of the 1-arc to choose
// 1. The engine locates the adjacent pair whose spliced behavior breaks
// agreement (or the base/choice condition that failed earlier).
func WeakAgreementRing(builders map[string]sim.Builder, device string, horizon int) (*ChainResult, error) {
	cr := &ChainResult{
		Theorem: "Theorem 2 (weak agreement)",
		Problem: "weak Byzantine agreement",
		Device:  device,
		F:       1,
		G:       graph.Triangle(),
	}
	// Base behaviors: all correct, unanimous inputs.
	base := make(map[string]*sim.Run, 2)
	tPrime := 0
	for _, bit := range []string{"0", "1"} {
		run, err := runTriangle(builders, sim.Input(bit), horizon)
		if err != nil {
			return nil, err
		}
		base[bit] = run
		name := "B" + bit
		cr.addLink(Link{
			Name: name, Splice: baseSplice(run),
			Expect:  fmt.Sprintf("all-correct unanimous %s: choice + validity force %s", bit, bit),
			Correct: run.G.Names(),
		})
		rep := weak.Check(run, run.G.Names(), true)
		if rep.Choice != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "choice", Detail: rep.Choice.Error()})
		}
		if rep.Agreement != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "agreement", Detail: rep.Agreement.Error()})
		}
		if rep.Validity != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "validity", Detail: rep.Validity.Error()})
		}
		for _, nodeName := range run.G.Names() {
			if d, _ := run.DecisionOf(nodeName); d.Round > tPrime {
				tPrime = d.Round
			}
		}
	}
	if cr.Contradicted() {
		return cr, nil // not even a weak agreement device in fault-free runs
	}
	k := chooseK(tPrime)
	m := 4 * k
	if horizon <= tPrime+1 {
		return nil, fmt.Errorf("core: horizon %d too small for decision round %d", horizon, tPrime)
	}
	cover := graph.RingCoverTriangle(m)
	inst, err := InstallCover(cover, builders, ringArcInputs(cover.S, k, "1", "0"))
	if err != nil {
		return nil, err
	}
	runS, err := inst.Execute(horizon)
	if err != nil {
		return nil, err
	}
	cr.RunS = runS
	cr.CoverSize = m

	// Bounded-Delay self-check (Lemma 3): the middles of the arcs are at
	// distance >= k from any opposite input, so their behaviors track
	// the unanimous base runs for at least k rounds, and k > t' means
	// they inherit the base decisions.
	if err := checkArcMiddles(cr, runS, cover, base, k, map[string]string{"1": "1", "0": "0"}); err != nil {
		return nil, err
	}

	// Splice every adjacent pair into a correct one-fault behavior.
	for i := 0; i < m; i++ {
		j := (i + 1) % m
		name := fmt.Sprintf("E%d", i)
		sp, err := SpliceScenario(inst, runS, []int{i, j}, builders)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		cr.addLink(Link{
			Name: name, Splice: sp,
			Expect:  "the two correct nodes must agree",
			Correct: sp.Correct, Faulty: sp.Faulty,
		})
		rep := weak.Check(sp.Run, sp.Correct, false)
		if rep.Choice != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "choice", Detail: rep.Choice.Error()})
		}
		if rep.Agreement != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "agreement", Detail: rep.Agreement.Error()})
		}
	}
	if !cr.Contradicted() {
		return cr, fmt.Errorf("core: ring of %d chained to agreement yet arc middles differ — impossible:\n%s", m, cr)
	}
	return cr, nil
}

// checkArcMiddles verifies Lemma 3 numerically: the middle node of each
// arc must have a snapshot prefix identical to its triangle image in the
// matching unanimous base run for at least k rounds, and must have
// inherited that run's decision. A failure is a simulator bug, not a
// device failure, so it is returned as an error.
func checkArcMiddles(cr *ChainResult, runS *sim.Run, cover *graph.Cover, base map[string]*sim.Run, k int, wantByArc map[string]string) error {
	mids := map[string]int{"1": k, "0": 3 * k} // middle of the 1-arc and 0-arc
	for bit, mid := range mids {
		sName := cover.S.Name(mid)
		gName := cover.G.Name(cover.Phi[mid])
		div, err := sim.PrefixEqual(runS, sName, base[bit], gName)
		if err != nil {
			return err
		}
		if div < k && div < runS.Rounds {
			return fmt.Errorf("core: Lemma 3 violated: ring node %s diverged from base-%s %s at round %d < k=%d",
				sName, bit, gName, div, k)
		}
		dS, err := runS.DecisionOf(sName)
		if err != nil {
			return err
		}
		want := wantByArc[bit]
		if want != "" && dS.Value != want {
			return fmt.Errorf("core: ring node %s decided %q, want %q from the base-%s run", sName, dS.Value, want, bit)
		}
	}
	return nil
}

// FiringSquadRing mechanizes Theorem 4 for the triangle. The all-correct
// stimulated triangle fixes the fire time t; the devices then run on the
// 4k-ring covering (k > t) with the stimulus delivered to one
// semicircle. The middle of the stimulated arc fires at t, the middle of
// the quiet arc cannot have fired by then (its behavior tracks the
// no-stimulus run), and every adjacent pair is a correct one-fault
// behavior of the triangle in which firing must be simultaneous — so
// some pair's spliced behavior breaks the agreement condition.
func FiringSquadRing(builders map[string]sim.Builder, device string, horizon int) (*ChainResult, error) {
	cr := &ChainResult{
		Theorem: "Theorem 4 (Byzantine firing squad)",
		Problem: "Byzantine firing squad",
		Device:  device,
		F:       1,
		G:       graph.Triangle(),
	}
	base := make(map[string]*sim.Run, 2)
	fireTime := -1
	for _, bit := range []string{"0", "1"} {
		run, err := runTriangle(builders, sim.Input(bit), horizon)
		if err != nil {
			return nil, err
		}
		base[bit] = run
		name := "B" + bit
		stimulated := bit == "1"
		expect := "no stimulus and all correct: nobody fires"
		if stimulated {
			expect = "stimulus everywhere and all correct: everyone fires, simultaneously"
		}
		cr.addLink(Link{
			Name: name, Splice: baseSplice(run), Expect: expect, Correct: run.G.Names(),
		})
		rep := firingsquad.Check(run, run.G.Names(), true, stimulated)
		if rep.Agreement != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "agreement", Detail: rep.Agreement.Error()})
		}
		if rep.Validity != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "validity", Detail: rep.Validity.Error()})
		}
		if stimulated {
			for _, nodeName := range run.G.Names() {
				if d, _ := run.DecisionOf(nodeName); d.Value == firingsquad.Fired && d.Round > fireTime {
					fireTime = d.Round
				}
			}
		}
	}
	if cr.Contradicted() {
		return cr, nil
	}
	k := chooseK(fireTime)
	m := 4 * k
	if horizon <= fireTime+1 {
		return nil, fmt.Errorf("core: horizon %d too small for fire time %d", horizon, fireTime)
	}
	cover := graph.RingCoverTriangle(m)
	inst, err := InstallCover(cover, builders, ringArcInputs(cover.S, k, "1", "0"))
	if err != nil {
		return nil, err
	}
	runS, err := inst.Execute(horizon)
	if err != nil {
		return nil, err
	}
	cr.RunS = runS
	cr.CoverSize = m

	if err := checkArcMiddles(cr, runS, cover, base, k,
		map[string]string{"1": firingsquad.Fired, "0": ""}); err != nil {
		return nil, err
	}
	// The quiet arc's middle tracked the no-stimulus run through round
	// k-1, so it cannot have fired before round k (while the stimulated
	// middle fired at t < k).
	if d, _ := runS.DecisionOf(cover.S.Name(3 * k)); d.Value == firingsquad.Fired && d.Round < k {
		return nil, fmt.Errorf("core: quiet-arc middle fired at %d < k=%d despite tracking the no-stimulus run", d.Round, k)
	}

	for i := 0; i < m; i++ {
		j := (i + 1) % m
		name := fmt.Sprintf("E%d", i)
		sp, err := SpliceScenario(inst, runS, []int{i, j}, builders)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		cr.addLink(Link{
			Name: name, Splice: sp,
			Expect:  "the two correct nodes fire simultaneously or not at all",
			Correct: sp.Correct, Faulty: sp.Faulty,
		})
		rep := firingsquad.Check(sp.Run, sp.Correct, false, false)
		if rep.Agreement != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "agreement", Detail: rep.Agreement.Error()})
		}
	}
	if !cr.Contradicted() {
		return cr, fmt.Errorf("core: every adjacent pair fired in lockstep yet the arcs differ — impossible:\n%s", cr)
	}
	return cr, nil
}
