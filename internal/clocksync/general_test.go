package clocksync

import (
	"testing"

	"flm/internal/graph"
)

func TestTheorem8NodesTriangleSingletons(t *testing.T) {
	// Singleton blocks on the triangle must reproduce the direct ring
	// argument's defeat of every device.
	params := stdParams(1.5)
	g := graph.Triangle()
	for name, builder := range map[string]Builder{
		"trivial": NewTrivialLower(params.L),
		"chase":   NewChaseMax(params.L),
	} {
		res, err := Theorem8Nodes(params, g, []int{0}, []int{1}, []int{2}, 1, triBuilders(builder))
		if err != nil {
			t.Fatalf("%s: engine error: %v", name, err)
		}
		if !res.Contradicted() {
			t.Fatalf("%s survived the general node argument:\n%s", name, res)
		}
	}
}

func TestTheorem8NodesGeneralBlocks(t *testing.T) {
	// K6 with f=2 and blocks of two nodes each.
	params := stdParams(1.5)
	g := graph.Complete(6)
	builders := map[string]Builder{}
	for _, name := range g.Names() {
		builders[name] = NewChaseMax(params.L)
	}
	res, err := Theorem8Nodes(params, g, []int{0, 1}, []int{2, 3}, []int{4, 5}, 2, builders)
	if err != nil {
		t.Fatalf("engine error: %v", err)
	}
	if !res.Contradicted() {
		t.Fatalf("chase survived on K6:\n%s", res)
	}
}

func TestTheorem8NodesValidation(t *testing.T) {
	params := stdParams(1.5)
	g := graph.Complete(4) // n = 3f+1: adequate
	if _, err := Theorem8Nodes(params, g, []int{0}, []int{1}, []int{2, 3}, 1,
		map[string]Builder{}); err == nil {
		t.Error("adequate graph accepted")
	}
	tri := graph.Triangle()
	if _, err := Theorem8Nodes(params, tri, []int{0, 1}, []int{2}, nil, 1,
		triBuilders(NewTrivialLower(params.L))); err == nil {
		t.Error("empty block accepted")
	}
}

func TestTheorem8ConnectivityDiamond(t *testing.T) {
	params := stdParams(1.5)
	g := graph.Diamond()
	builders := map[string]Builder{}
	for _, name := range g.Names() {
		builders[name] = NewTrivialLower(params.L)
	}
	res, err := Theorem8Connectivity(params, g, []int{1}, []int{3}, 0, 2, 1, builders)
	if err != nil {
		t.Fatalf("engine error: %v", err)
	}
	if !res.Contradicted() {
		t.Fatalf("trivial device survived the connectivity argument:\n%s", res)
	}
}

func TestTheorem8ConnectivityChase(t *testing.T) {
	params := stdParams(1.5)
	g := graph.Diamond()
	builders := map[string]Builder{}
	for _, name := range g.Names() {
		builders[name] = NewChaseMax(params.L)
	}
	res, err := Theorem8Connectivity(params, g, []int{1}, []int{3}, 0, 2, 1, builders)
	if err != nil {
		t.Fatalf("engine error: %v", err)
	}
	if !res.Contradicted() {
		t.Fatalf("chase survived:\n%s", res)
	}
	// The chase device keeps neighbors tight, so the cascade must push
	// someone through the envelope somewhere.
	hasEnvelope := false
	for _, v := range res.Violations {
		if v.Condition == "envelope" {
			hasEnvelope = true
		}
	}
	if !hasEnvelope {
		t.Errorf("no envelope violation: %v", res.Violations)
	}
}

func TestTheorem8ConnectivityValidation(t *testing.T) {
	params := stdParams(1.5)
	g := graph.Diamond()
	builders := triBuilders(NewTrivialLower(params.L))
	if _, err := Theorem8Connectivity(params, g, []int{1, 2}, []int{3}, 0, 2, 1, builders); err == nil {
		t.Error("oversized cut half accepted")
	}
	if _, err := Theorem8Connectivity(params, g, []int{1}, nil, 0, 2, 1, builders); err == nil {
		t.Error("non-separating cut accepted")
	}
}
