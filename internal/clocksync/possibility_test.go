package clocksync

import (
	"math/big"
	"testing"

	"flm/internal/clockfn"
	"flm/internal/graph"
)

func TestTrimmedMidpointBeatsTrivialOnAdequateGraph(t *testing.T) {
	// K4, f=1: three correct nodes (two slow clocks, one fast) plus a
	// scripted clock liar. The trimmed-midpoint device must keep the
	// correct gap well below the unbounded trivial gap at late times.
	params := stdParams(1)
	g := graph.Complete(4)
	clocks := []clockfn.RatLinear{
		clockfn.RatIdentity(),            // p0: slow
		clockfn.NewRatLinear(3, 2, 0, 1), // p1: fast
		clockfn.NewRatLinear(5, 4, 1, 4), // p2: in between, offset
		clockfn.RatIdentity(),            // p3: the liar (clock irrelevant)
	}
	builders := map[string]Builder{}
	for _, name := range g.Names() {
		builders[name] = NewTrimmedMidpoint(params.L, 1)
	}
	samples := []*big.Rat{big.NewRat(8, 1), big.NewRat(32, 1), big.NewRat(64, 1)}
	results, err := MeasureAdequateSync(params, g, clocks, builders, "p3",
		ClockLiarScript(g, "p3", 64), samples)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.T >= 32 && r.MeasuredGap >= r.TrivialGap {
			t.Errorf("t=%v: measured gap %.3f not below trivial %.3f on an ADEQUATE graph",
				r.T, r.MeasuredGap, r.TrivialGap)
		}
		// The liar must not have dragged the correct clocks to absurdity.
		if r.MeasuredGap > 10 {
			t.Errorf("t=%v: gap %.3f exploded; trimming failed", r.T, r.MeasuredGap)
		}
	}
}

func TestTrivialDeviceMatchesTrivialGapExactly(t *testing.T) {
	params := stdParams(1)
	g := graph.Complete(4)
	clocks := []clockfn.RatLinear{
		clockfn.RatIdentity(),            // slow
		clockfn.NewRatLinear(3, 2, 0, 1), // fast
		clockfn.NewRatLinear(5, 4, 1, 4), // in between, offset
		clockfn.RatIdentity(),            // the liar's (irrelevant)
	}
	builders := map[string]Builder{}
	for _, name := range g.Names() {
		builders[name] = NewTrivialLower(params.L)
	}
	results, err := MeasureAdequateSync(params, g, clocks, builders, "", nil,
		[]*big.Rat{big.NewRat(8, 1), big.NewRat(32, 1)})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if diff := r.MeasuredGap - r.TrivialGap; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("t=%v: trivial device gap %.6f != l(q)-l(p) = %.6f", r.T, r.MeasuredGap, r.TrivialGap)
		}
	}
}

func TestMeasureAdequateSyncValidation(t *testing.T) {
	params := stdParams(1)
	g := graph.Complete(3)
	if _, err := MeasureAdequateSync(params, g, nil, nil, "", nil, nil); err == nil {
		t.Error("clock count mismatch accepted")
	}
	clocks := []clockfn.RatLinear{clockfn.RatIdentity(), clockfn.RatIdentity(), clockfn.RatIdentity()}
	if _, err := MeasureAdequateSync(params, g, clocks, map[string]Builder{}, "", nil,
		[]*big.Rat{big.NewRat(1, 1)}); err == nil {
		t.Error("missing builder accepted")
	}
}
