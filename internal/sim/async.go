package sim

import "hash/fnv"

// Adversarial asynchrony. The base model is synchronous: a message sent
// in round r is delivered in round r+1. A DelaySchedule weakens that
// guarantee adversarially: selected messages are held back extra rounds,
// chosen by the adversary as a function of (sender, receiver, send
// round). The schedule is a finite, explicit rule list, which is what
// makes it a first-class attack artifact: it can be fingerprinted into
// the run cache key, replayed bit for bit from a seed, and shrunk to a
// 1-minimal asynchrony counterexample by the chaos machinery.
//
// Semantics, fixed so async runs stay deterministic at any worker count:
//
//   - a message sent in round r on an edge matching rule (From,To,Round)
//     is delivered in round r+1+Extra instead of r+1;
//   - a delivery landing at or past the round horizon is never read —
//     within a finite execution, "delayed past the end" and "lost in
//     transit" are the same observable event, which is exactly how a
//     finite run models unbounded asynchrony;
//   - when two payloads from the same sender to the same receiver
//     collapse onto the same delivery round, the latest-sent one wins
//     (channels reorder but never duplicate); protocols that tolerate
//     asynchrony must carry cumulative state, not per-round deltas.
//
// Async runs are NOT inputs for CheckLocality or the splice engine: the
// Locality axiom's "inbox r+1 equals sends r" identity is precisely what
// a delay schedule breaks. Asynchrony lives on the possibility/chaos
// side of the reproduction (the FLP Section 4 baseline and E19/E20).

// DelayRule holds back the message sent from From to To in round Round
// by Extra additional rounds beyond the synchronous single-round
// delivery. Extra <= 0 rules are inert.
type DelayRule struct {
	From, To string
	Round    int
	Extra    int
}

// DelaySchedule is an explicit adversarial asynchrony schedule. The nil
// schedule (and the empty one) is the synchronous model. Rules are
// applied last-writer-wins when several name the same (From,To,Round)
// triple; canonical schedules keep Rules sorted and duplicate-free so
// equal schedules hash equally.
type DelaySchedule struct {
	Rules []DelayRule
}

// delayKey indexes the compiled rule table by message coordinates.
type delayKey struct {
	from, to string
	round    int
}

// compile resolves the rule list into a lookup table plus the largest
// extra delay (the executor's ring-buffer window). Inert rules are
// dropped.
func (s *DelaySchedule) compile() (map[delayKey]int, int) {
	if s == nil || len(s.Rules) == 0 {
		return nil, 0
	}
	table := make(map[delayKey]int, len(s.Rules))
	maxExtra := 0
	for _, r := range s.Rules {
		if r.Extra <= 0 {
			continue
		}
		table[delayKey{r.From, r.To, r.Round}] = r.Extra
		if r.Extra > maxExtra {
			maxExtra = r.Extra
		}
	}
	if len(table) == 0 {
		return nil, 0
	}
	return table, maxExtra
}

// MaxExtra returns the largest effective delay in the schedule (0 for
// nil/empty/inert schedules).
func (s *DelaySchedule) MaxExtra() int {
	max := 0
	if s == nil {
		return 0
	}
	for _, r := range s.Rules {
		if r.Extra > max {
			max = r.Extra
		}
	}
	return max
}

// Empty reports whether the schedule has no effective rule.
func (s *DelaySchedule) Empty() bool {
	if s == nil {
		return true
	}
	for _, r := range s.Rules {
		if r.Extra > 0 {
			return false
		}
	}
	return true
}

// SeededDelays derives a full adversary-controlled delay function of
// (sender, receiver, round, seed) and materializes it as an explicit
// rule list over the given node names and round horizon: every directed
// pair and round gets extra delay hash(seed, from, to, round) mod
// (maxExtra+1). The result is a pure function of its arguments — the
// same seed reproduces the same asynchrony on any machine and worker
// count — and, being explicit rules, it shrinks like any other
// schedule.
func SeededDelays(seed int64, names []string, rounds, maxExtra int) *DelaySchedule {
	if maxExtra <= 0 || rounds <= 0 {
		return &DelaySchedule{}
	}
	s := &DelaySchedule{}
	for _, from := range names {
		for _, to := range names {
			if from == to {
				continue
			}
			for r := 0; r < rounds; r++ {
				extra := int(seededExtra(seed, from, to, r) % uint64(maxExtra+1))
				if extra > 0 {
					s.Rules = append(s.Rules, DelayRule{From: from, To: to, Round: r, Extra: extra})
				}
			}
		}
	}
	return s
}

// seededExtra is the raw adversary hash: a stable FNV-1a mix of the
// seed and the message coordinates.
func seededExtra(seed int64, from, to string, round int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u := uint64(seed)
	for i := range buf {
		buf[i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(from))
	h.Write([]byte{0})
	h.Write([]byte(to))
	h.Write([]byte{0})
	u = uint64(int64(round))
	for i := range buf {
		buf[i] = byte(u >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}
