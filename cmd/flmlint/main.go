// Command flmlint is the repo's custom static-analysis vettool. It
// runs the four invariant checkers in internal/lint — flmdeterminism,
// flmfingerprint, flmobscost, flmalias — either under the go command:
//
//	go vet -vettool=bin/flmlint ./...
//
// or standalone on package patterns:
//
//	go run ./cmd/flmlint ./...
//
// Both modes exit nonzero when any finding survives the
// //flmlint:allow directives; `make lint` (folded into `make verify`)
// and the CI lint job gate on that.
//
// The vettool mode speaks the cmd/go vet protocol directly (the same
// one x/tools' unitchecker implements): -V=full prints a content hash
// of the binary for the build cache, -flags advertises no extra flags,
// and a lone *.cfg argument is a per-package JSON config whose export
// data we type-check against. The module deliberately has no
// dependencies, so the protocol is implemented here on the standard
// library alone.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"flm/internal/lint"
)

func main() {
	args := os.Args[1:]

	if len(args) == 1 && args[0] == "-V=full" {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		// No tool-specific flags; cmd/go requires valid JSON here.
		if err := json.NewEncoder(os.Stdout).Encode([]struct{}{}); err != nil {
			fmt.Fprintf(os.Stderr, "flmlint: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(lint.RunVet(args[0], lint.All(), os.Stderr))
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: flmlint <packages>   (or via go vet -vettool)")
		os.Exit(1)
	}
	os.Exit(lint.RunStandalone(args, lint.All(), os.Stderr))
}

// printVersion emits the `name version buildID` line cmd/go hashes
// into its action IDs, so editing the linter invalidates cached vet
// results. Hashing the executable itself is exactly what unitchecker
// does; it changes whenever the analyzers change.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "flmlint: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flmlint: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "flmlint: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel buildID=%02x\n", progname, h.Sum(nil))
}
