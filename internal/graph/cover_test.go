package graph

import (
	"testing"
	"testing/quick"
)

func TestHexCoverIsValid(t *testing.T) {
	c := HexCover()
	if err := c.Verify(); err != nil {
		t.Fatalf("hex cover invalid: %v", err)
	}
	if c.S.N() != 6 || c.G.N() != 3 {
		t.Fatalf("hex cover shape: S=%d G=%d", c.S.N(), c.G.N())
	}
	// Fibers have size 2.
	for g := 0; g < 3; g++ {
		if fiber := c.Fiber(g); len(fiber) != 2 {
			t.Errorf("fiber of %s = %v, want size 2", c.G.Name(g), fiber)
		}
	}
}

func TestRingCoverTriangle(t *testing.T) {
	for _, m := range []int{3, 6, 12, 24, 48} {
		c := RingCoverTriangle(m)
		if err := c.Verify(); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
		if c.S.N() != m {
			t.Errorf("m=%d: S has %d nodes", m, c.S.N())
		}
	}
}

func TestRingCoverTriangleRejectsBadSize(t *testing.T) {
	for _, m := range []int{0, 2, 4, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("m=%d accepted", m)
				}
			}()
			RingCoverTriangle(m)
		}()
	}
}

func TestDiamondCoverIsEightCycle(t *testing.T) {
	c := DiamondCover()
	if err := c.Verify(); err != nil {
		t.Fatalf("diamond cover invalid: %v", err)
	}
	if c.S.N() != 8 || c.S.NumEdges() != 8 {
		t.Fatalf("S shape: %d nodes %d edges", c.S.N(), c.S.NumEdges())
	}
	for u := 0; u < c.S.N(); u++ {
		if c.S.Degree(u) != 2 {
			t.Fatalf("S node %s has degree %d, want 2 (not a cycle)", c.S.Name(u), c.S.Degree(u))
		}
	}
	if !c.S.IsConnected() {
		t.Fatal("S is two 4-cycles, not one 8-cycle")
	}
}

func TestPartitionCoverSingletons(t *testing.T) {
	g := Triangle()
	c, err := PartitionCover(g, []int{0}, []int{1}, []int{2})
	if err != nil {
		t.Fatalf("PartitionCover: %v", err)
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("cover invalid: %v", err)
	}
	// Must be the hexagon: 6 nodes, all degree 2, connected.
	if c.S.N() != 6 || !c.S.IsConnected() {
		t.Fatalf("expected hexagon, got:\n%s", c.S)
	}
	for u := 0; u < 6; u++ {
		if c.S.Degree(u) != 2 {
			t.Errorf("node %s degree %d", c.S.Name(u), c.S.Degree(u))
		}
	}
}

func TestPartitionCoverGeneral(t *testing.T) {
	// K6 with f=2: blocks of size 2.
	g := Complete(6)
	c, err := PartitionCover(g, []int{0, 1}, []int{2, 3}, []int{4, 5})
	if err != nil {
		t.Fatalf("PartitionCover: %v", err)
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("cover invalid: %v", err)
	}
	if c.S.N() != 12 {
		t.Fatalf("S has %d nodes, want 12", c.S.N())
	}
	// Degree preserved: every S-node must have degree 5.
	for u := 0; u < c.S.N(); u++ {
		if c.S.Degree(u) != 5 {
			t.Errorf("node %s degree %d, want 5", c.S.Name(u), c.S.Degree(u))
		}
	}
	// The A-C edges must be crossed: a p0.0 neighbor mapping to p4 must
	// be p4.1, not p4.0.
	u := c.S.MustIndex("p0.0")
	for _, v := range c.S.Neighbors(u) {
		if c.G.Name(c.Phi[v]) == "p4" && c.S.Name(v) != "p4.1" {
			t.Errorf("a-c edge not crossed: p0.0 adjacent to %s", c.S.Name(v))
		}
	}
}

func TestPartitionCoverValidation(t *testing.T) {
	g := Complete(4)
	if _, err := PartitionCover(g, []int{0}, []int{1}, []int{2}); err == nil {
		t.Error("incomplete partition accepted")
	}
	if _, err := PartitionCover(g, []int{0, 1}, []int{1, 2}, []int{3}); err == nil {
		t.Error("overlapping partition accepted")
	}
	if _, err := PartitionCover(g, nil, []int{0, 1, 2}, []int{3}); err == nil {
		t.Error("empty block accepted")
	}
	if _, err := PartitionCover(g, []int{9}, []int{0, 1, 2}, []int{3}); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestCutCoverValidation(t *testing.T) {
	g := Diamond()
	// b and d really separate a from c.
	if _, err := CutCover(g, []int{1}, []int{3}, 0, 2); err != nil {
		t.Errorf("valid cut rejected: %v", err)
	}
	// {b} alone does not separate a from c.
	if _, err := CutCover(g, []int{1}, nil, 0, 2); err == nil {
		t.Error("non-separating cut accepted")
	}
	// Overlapping halves.
	if _, err := CutCover(g, []int{1}, []int{1}, 0, 2); err == nil {
		t.Error("overlapping cut halves accepted")
	}
	// Separated node inside the cut.
	if _, err := CutCover(g, []int{0}, []int{2}, 0, 1); err == nil {
		t.Error("endpoint inside cut accepted")
	}
}

func TestCutCoverOnLargerGraph(t *testing.T) {
	// Circulant(10, 1, 2) has connectivity 4; the cut {1,2,8,9}
	// separates node 0 from node 5. Split it as b={1,9}, d={2,8}.
	g := Circulant(10, 1, 2)
	c, err := CutCover(g, []int{1, 9}, []int{2, 8}, 0, 5)
	if err != nil {
		t.Fatalf("CutCover: %v", err)
	}
	if err := c.Verify(); err != nil {
		t.Fatalf("cover invalid: %v", err)
	}
	if c.S.N() != 20 {
		t.Fatalf("S has %d nodes", c.S.N())
	}
}

func TestEdgePreimage(t *testing.T) {
	c := HexCover()
	// S-node 0 maps to a; the G-edge b->a must have a unique preimage
	// neighbor of node 0 mapping to b.
	a, b := c.G.MustIndex("a"), c.G.MustIndex("b")
	for _, s := range c.Fiber(a) {
		pre := c.EdgePreimage(s, b)
		if c.Phi[pre] != b {
			t.Errorf("preimage of b->a at %s maps to %s", c.S.Name(s), c.G.Name(c.Phi[pre]))
		}
		if !c.S.HasEdge(pre, s) {
			t.Errorf("preimage %s not adjacent to %s", c.S.Name(pre), c.S.Name(s))
		}
	}
}

func TestInducedIsomorphic(t *testing.T) {
	c := HexCover()
	// Adjacent pair (1,2) = (b-copy, c-copy): isomorphic to {b,c} in G.
	if err := c.InducedIsomorphic([]int{1, 2}); err != nil {
		t.Errorf("adjacent pair rejected: %v", err)
	}
	// Antipodal pair (0,3) both map to a: not injective.
	if err := c.InducedIsomorphic([]int{0, 3}); err == nil {
		t.Error("non-injective subset accepted")
	}
	// Pair (0,2): a-copy and c-copy NOT adjacent in the hexagon but
	// adjacent in the triangle — not an isomorphism.
	if err := c.InducedIsomorphic([]int{0, 2}); err == nil {
		t.Error("non-isomorphic subset accepted")
	}
	// Triple (0,1,2) = consecutive a,b,c: S-edges a-b, b-c but not a-c;
	// G has a-c, so not isomorphic.
	if err := c.InducedIsomorphic([]int{0, 1, 2}); err == nil {
		t.Error("broken triple accepted")
	}
}

func TestVerifyCatchesBrokenCover(t *testing.T) {
	// Map a 4-ring onto the triangle: 0,1,2,3 -> a,b,c,a. Node 3's
	// neighbors are 2 (c) and 0 (a), but a's neighbors are b and c.
	c := &Cover{S: Ring(4), G: Triangle(), Phi: []int{0, 1, 2, 0}}
	if err := c.Verify(); err == nil {
		t.Error("invalid cover passed verification")
	}
	// Phi length mismatch.
	c2 := &Cover{S: Ring(6), G: Triangle(), Phi: []int{0, 1, 2}}
	if err := c2.Verify(); err == nil {
		t.Error("short phi passed verification")
	}
	// Out-of-range image.
	c3 := &Cover{S: Triangle(), G: Triangle(), Phi: []int{0, 1, 7}}
	if err := c3.Verify(); err == nil {
		t.Error("out-of-range phi passed verification")
	}
}

func TestCyclicCoverValid(t *testing.T) {
	g := Diamond()
	for _, m := range []int{2, 3, 4, 8} {
		c := CyclicCover(g, func(u, v int) bool { return g.Name(u) == "a" && g.Name(v) == "d" }, m)
		if err := c.Verify(); err != nil {
			t.Errorf("m=%d: %v", m, err)
		}
		if c.S.N() != 4*m {
			t.Errorf("m=%d: S has %d nodes", m, c.S.N())
		}
		// The diamond cyclic cut cover is the 4m-cycle.
		for u := 0; u < c.S.N(); u++ {
			if c.S.Degree(u) != 2 {
				t.Fatalf("m=%d: node %s degree %d", m, c.S.Name(u), c.S.Degree(u))
			}
		}
		if !c.S.IsConnected() {
			t.Errorf("m=%d: S disconnected", m)
		}
	}
}

func TestCyclicCoverMatchesRingCover(t *testing.T) {
	// The cyclic cover of the triangle crossing the a-c edge is a
	// 3m-cycle covering the triangle, structurally the RingCoverTriangle.
	tri := Triangle()
	c := CyclicCover(tri, func(u, v int) bool {
		return tri.Name(u) == "a" && tri.Name(v) == "c"
	}, 4)
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if c.S.N() != 12 || !c.S.IsConnected() {
		t.Fatalf("S shape: %d nodes connected=%v", c.S.N(), c.S.IsConnected())
	}
	for u := 0; u < c.S.N(); u++ {
		if c.S.Degree(u) != 2 {
			t.Fatalf("node %s degree %d", c.S.Name(u), c.S.Degree(u))
		}
	}
}

func TestCyclicCoverRejectsTooFewCopies(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("m=1 accepted")
		}
	}()
	CyclicCover(Triangle(), func(u, v int) bool { return false }, 1)
}

func TestCyclicCutCover(t *testing.T) {
	g := Diamond()
	c, err := CyclicCutCover(g, []int{1}, []int{3}, 0, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if c.S.N() != 24 {
		t.Errorf("S has %d nodes, want 24", c.S.N())
	}
	// Validation is shared with CutCover.
	if _, err := CyclicCutCover(g, []int{1}, nil, 0, 2, 6); err == nil {
		t.Error("non-separating cut accepted")
	}
}

// Property: TwoCopyCover always yields a valid covering, whatever the
// crossing predicate.
func TestTwoCopyCoverAlwaysValid(t *testing.T) {
	prop := func(seed int64, mask uint16) bool {
		g := GNP(6, 0.5, seed)
		cover := TwoCopyCover(g, func(u, v int) bool {
			return mask&(1<<uint((u*6+v)%16)) != 0
		})
		return cover.Verify() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: in any valid ring cover of the triangle, every fiber has the
// same size m/3.
func TestRingCoverFiberSizes(t *testing.T) {
	for _, m := range []int{6, 12, 24} {
		c := RingCoverTriangle(m)
		for g := 0; g < 3; g++ {
			if got := len(c.Fiber(g)); got != m/3 {
				t.Errorf("m=%d fiber(%d) size %d, want %d", m, g, got, m/3)
			}
		}
	}
}
