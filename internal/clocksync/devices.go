// Package clocksync implements FLM85 Section 7: clock synchronization
// devices (the trivial lower-envelope clock, a chase-the-fastest clock,
// and a midpoint-averaging clock), the "nontrivial synchronization"
// conditions, and the mechanized Theorem 8 argument — the ring covering
// with hardware clocks q∘h⁻ⁱ in which any device that beats the trivial
// synchronization l(q(t))−l(p(t)) by a constant α must violate either the
// agreement bound or the envelope condition.
package clocksync

import (
	"fmt"
	"math/big"
	"sort"

	"flm/internal/clockfn"
	"flm/internal/timedsim"
)

// Builder constructs a fresh synchronization device for a named node.
type Builder func(self string, neighbors []string) timedsim.Device

// ratTwo is the shared division constant for the averaging devices. It is
// never mutated: big.Rat.Quo only reads its operand's storage, so sharing
// it across concurrently ticking devices is safe.
var ratTwo = big.NewRat(2, 1)

// sortedNeighbors copies and sorts a neighbor list, skipping the sort
// when the caller already handed it over in order (the common case:
// devices are re-Init'd with pre-sorted lists on every trial).
func sortedNeighbors(neighbors []string) []string {
	out := append([]string(nil), neighbors...)
	if !sort.StringsAreSorted(out) {
		sort.Strings(out)
	}
	return out
}

// trivialDevice runs its logical clock at the lower envelope of its
// hardware clock: C(t) = l(D(t)). The paper proves this no-communication
// strategy is optimal on inadequate graphs: it synchronizes to exactly
// l(q(t)) - l(p(t)) and nothing can do better by any constant.
type trivialDevice struct {
	l clockfn.Fn
}

var _ timedsim.Device = (*trivialDevice)(nil)

// NewTrivialLower returns a builder for lower-envelope devices.
func NewTrivialLower(l clockfn.Fn) Builder {
	return func(self string, neighbors []string) timedsim.Device {
		return &trivialDevice{l: l}
	}
}

func (d *trivialDevice) Init(self string, neighbors []string) {}

func (d *trivialDevice) Tick(k int, hw *big.Rat, inbox []timedsim.Message) []timedsim.Send {
	return nil
}

func (d *trivialDevice) Logical(hw *big.Rat) float64 {
	f, _ := hw.Float64()
	return d.l.At(f)
}

func (d *trivialDevice) Snapshot() string { return "trivial" }

// chaseDevice broadcasts its hardware reading at every tick and keeps its
// logical clock at l(hw + ahead), where ahead is the largest lead it has
// ever observed a neighbor to have. Synchronizing with the fastest
// neighbor is exactly the behavior Theorem 8's induction exploits: around
// the ring each node believes its predecessor is ahead, and the
// accumulated lead blows through the upper envelope.
type chaseDevice struct {
	self  string
	nbs   []string
	l     clockfn.Fn
	ahead *big.Rat
	tmp   big.Rat // per-message parse/lead scratch
	eff   big.Rat // corrected-reading scratch
	scr   clockfn.RatScratch
	out   []timedsim.Send // reused outbox (consumed before the next Tick)
}

var _ timedsim.Device = (*chaseDevice)(nil)

// NewChaseMax returns a builder for chase-the-fastest devices.
func NewChaseMax(l clockfn.Fn) Builder {
	return func(self string, neighbors []string) timedsim.Device {
		d := &chaseDevice{l: l}
		d.Init(self, neighbors)
		return d
	}
}

func (d *chaseDevice) Init(self string, neighbors []string) {
	d.self = self
	d.nbs = sortedNeighbors(neighbors)
	d.ahead = new(big.Rat)
}

func (d *chaseDevice) Tick(k int, hw *big.Rat, inbox []timedsim.Message) []timedsim.Send {
	for _, m := range inbox {
		reported, ok := d.tmp.SetString(m.Payload)
		if !ok {
			continue
		}
		// The neighbor's reading was taken at its send time, which is
		// earlier than now; treating it as current only underestimates
		// the lead, keeping the device conservative.
		lead := reported.Sub(reported, hw)
		if d.scr.Cmp(lead, d.ahead) > 0 {
			d.ahead.Set(lead)
		}
	}
	d.eff.Add(hw, d.ahead)
	payload := d.eff.RatString() // one encoding shared by every neighbor
	out := d.out[:0]
	for _, nb := range d.nbs {
		out = append(out, timedsim.Send{To: nb, Payload: payload})
	}
	d.out = out
	return out
}

func (d *chaseDevice) Logical(hw *big.Rat) float64 {
	d.eff.Add(hw, d.ahead)
	f, _ := d.eff.Float64()
	return d.l.At(f)
}

func (d *chaseDevice) Snapshot() string {
	return fmt.Sprintf("chase(ahead=%s)", d.ahead.RatString())
}

// trimmedDevice is the fault-tolerant variant: it moves its correction
// halfway toward the MEDIAN of its neighbors' last readings after
// discarding the f most extreme on each side, so up to f Byzantine
// neighbors cannot drag it outside the correct readings' range. On
// adequate graphs this beats the trivial l(q)-l(p) synchronization —
// which Theorem 8 only forbids on inadequate ones.
type trimmedDevice struct {
	self     string
	nbs      []string
	l        clockfn.Fn
	f        int
	corr     *big.Rat
	last     map[string]*big.Rat
	tmp      big.Rat // per-message parse scratch
	own      big.Rat // corrected-reading scratch
	adj      big.Rat // correction-step scratch
	scr      clockfn.RatScratch
	readings []*big.Rat      // reused per-tick sort buffer
	out      []timedsim.Send // reused outbox (consumed before the next Tick)
}

var _ timedsim.Device = (*trimmedDevice)(nil)

// NewTrimmedMidpoint returns a builder for trimmed-median averaging
// devices tolerating f Byzantine neighbors.
func NewTrimmedMidpoint(l clockfn.Fn, f int) Builder {
	return func(self string, neighbors []string) timedsim.Device {
		d := &trimmedDevice{l: l, f: f}
		d.Init(self, neighbors)
		return d
	}
}

func (d *trimmedDevice) Init(self string, neighbors []string) {
	d.self = self
	d.nbs = sortedNeighbors(neighbors)
	d.corr = new(big.Rat)
	d.last = make(map[string]*big.Rat, len(d.nbs))
}

func (d *trimmedDevice) Tick(k int, hw *big.Rat, inbox []timedsim.Message) []timedsim.Send {
	for _, m := range inbox {
		if reported, ok := d.tmp.SetString(m.Payload); ok {
			if v, exists := d.last[m.From]; exists {
				v.Set(reported)
			} else {
				d.last[m.From] = new(big.Rat).Set(reported)
			}
		}
	}
	readings := d.readings[:0]
	for _, nb := range d.nbs {
		if v, ok := d.last[nb]; ok {
			readings = append(readings, v)
		}
	}
	d.readings = readings
	if len(readings) > 2*d.f {
		// Stable insertion sort: neighbor fan-in is small and equal
		// readings yield the same median value either way.
		for i := 1; i < len(readings); i++ {
			for j := i; j > 0 && d.scr.Cmp(readings[j], readings[j-1]) < 0; j-- {
				readings[j], readings[j-1] = readings[j-1], readings[j]
			}
		}
		trimmed := readings[d.f : len(readings)-d.f]
		median := trimmed[len(trimmed)/2]
		own := d.own.Add(hw, d.corr)
		adj := d.adj.Sub(median, own)
		adj.Quo(adj, ratTwo)
		d.corr.Add(d.corr, adj)
	}
	d.own.Add(hw, d.corr)
	payload := d.own.RatString()
	out := d.out[:0]
	for _, nb := range d.nbs {
		out = append(out, timedsim.Send{To: nb, Payload: payload})
	}
	d.out = out
	return out
}

func (d *trimmedDevice) Logical(hw *big.Rat) float64 {
	d.own.Add(hw, d.corr)
	f, _ := d.own.Float64()
	return d.l.At(f)
}

func (d *trimmedDevice) Snapshot() string {
	keys := make([]string, 0, len(d.last))
	for k := range d.last {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := fmt.Sprintf("trim(f=%d,corr=%s)", d.f, d.corr.RatString())
	for _, k := range keys {
		s += "|" + k + "=" + d.last[k].RatString()
	}
	return s
}

// midpointDevice averages: it broadcasts its corrected reading each tick
// and moves its correction halfway toward the midpoint of the extreme
// neighbor readings.
type midpointDevice struct {
	self string
	nbs  []string
	l    clockfn.Fn
	corr *big.Rat
	last map[string]*big.Rat
	tmp  big.Rat // per-message parse scratch
	own  big.Rat // corrected-reading scratch
	mid  big.Rat // midpoint scratch
	adj  big.Rat // correction-step scratch
	scr  clockfn.RatScratch
	out  []timedsim.Send // reused outbox (consumed before the next Tick)
}

var _ timedsim.Device = (*midpointDevice)(nil)

// NewMidpoint returns a builder for midpoint-averaging devices.
func NewMidpoint(l clockfn.Fn) Builder {
	return func(self string, neighbors []string) timedsim.Device {
		d := &midpointDevice{l: l}
		d.Init(self, neighbors)
		return d
	}
}

func (d *midpointDevice) Init(self string, neighbors []string) {
	d.self = self
	d.nbs = sortedNeighbors(neighbors)
	d.corr = new(big.Rat)
	d.last = make(map[string]*big.Rat, len(d.nbs))
}

func (d *midpointDevice) Tick(k int, hw *big.Rat, inbox []timedsim.Message) []timedsim.Send {
	for _, m := range inbox {
		if reported, ok := d.tmp.SetString(m.Payload); ok {
			if v, exists := d.last[m.From]; exists {
				v.Set(reported)
			} else {
				d.last[m.From] = new(big.Rat).Set(reported)
			}
		}
	}
	if len(d.last) > 0 {
		own := d.own.Add(hw, d.corr)
		lo, hi := (*big.Rat)(nil), (*big.Rat)(nil)
		for _, nb := range d.nbs {
			v, ok := d.last[nb]
			if !ok {
				continue
			}
			if lo == nil || d.scr.Cmp(v, lo) < 0 {
				lo = v
			}
			if hi == nil || d.scr.Cmp(v, hi) > 0 {
				hi = v
			}
		}
		if lo != nil {
			mid := d.mid.Add(lo, hi)
			mid.Quo(mid, ratTwo)
			adj := d.adj.Sub(mid, own)
			adj.Quo(adj, ratTwo)
			d.corr.Add(d.corr, adj)
		}
	}
	d.own.Add(hw, d.corr)
	payload := d.own.RatString()
	out := d.out[:0]
	for _, nb := range d.nbs {
		out = append(out, timedsim.Send{To: nb, Payload: payload})
	}
	d.out = out
	return out
}

func (d *midpointDevice) Logical(hw *big.Rat) float64 {
	d.own.Add(hw, d.corr)
	f, _ := d.own.Float64()
	return d.l.At(f)
}

func (d *midpointDevice) Snapshot() string {
	keys := make([]string, 0, len(d.last))
	for k := range d.last {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := fmt.Sprintf("mid(corr=%s)", d.corr.RatString())
	for _, k := range keys {
		s += "|" + k + "=" + d.last[k].RatString()
	}
	return s
}
