package lint

import (
	"strings"
	"testing"
)

func TestFingerprintFixture(t *testing.T) {
	runFixture(t, "flm/internal/fpfix", []*Analyzer{Fingerprint})
}

// TestFingerprintCatchesDeletedFieldReference is the acceptance check
// in executable form: the same struct is clean while the fingerprint
// reads both fields and becomes a finding the moment one read is
// deleted.
func TestFingerprintCatchesDeletedFieldReference(t *testing.T) {
	const complete = `
package p

type dev struct {
	seed  int64
	alpha string
}

func (d *dev) DeviceFingerprint() string {
	return "d:" + d.alpha + string(rune(d.seed))
}
`
	if diags := checkSource(t, "p", complete, []*Analyzer{Fingerprint}); len(diags) != 0 {
		t.Fatalf("complete fingerprint flagged: %v", diags)
	}

	// Delete the d.alpha reference.
	broken := strings.Replace(complete, `"d:" + d.alpha + string(rune(d.seed))`, `"d:" + string(rune(d.seed))`, 1)
	diags := checkSource(t, "p", broken, []*Analyzer{Fingerprint})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "dev.alpha") {
		t.Fatalf("expected exactly one finding for dev.alpha, got %v", diags)
	}
}
