package sim

import (
	"flm/internal/runcache"
)

// Fingerprinter is an optional Device capability that makes executions
// content-addressable. DeviceFingerprint returns a canonical encoding of
// the device's identity: its type and every constructor parameter that
// influences behavior beyond the (self, neighbors, input) triple, which
// the executor keys separately. Two devices with equal fingerprints
// installed at the same node of the same system must behave identically
// in every round — the model's determinism requirement makes this
// well-defined, and seeded pseudo-randomness is covered by folding the
// seed into the fingerprint.
//
// Returning "" opts the device out (e.g. a wrapper whose inner device is
// not fingerprintable); systems containing any non-fingerprintable
// device bypass the run cache entirely.
type Fingerprinter interface {
	DeviceFingerprint() string
}

// FingerprintOf returns the device's fingerprint, or "" when the device
// does not support content addressing.
func FingerprintOf(d Device) string {
	if f, ok := d.(Fingerprinter); ok {
		return f.DeviceFingerprint()
	}
	return ""
}

// runCache memoizes whole executions keyed by systemKey. Runs are
// immutable once executed (nothing in the engine writes a Run after
// ExecuteCtx returns), so cached runs are shared, not copied. The L1
// tier is bounded by FLM_CACHE_BUDGET with runCost (see runblob.go)
// accounting the retained bytes of each run; the optional disk tier is
// installed per process with SetRunCacheDir.
var runCache = runcache.New(
	runcache.WithCost(runCost),
	runcache.WithMetrics("sim.run"),
)

// RunCacheStats reports the execution cache's hit/miss counters.
func RunCacheStats() runcache.Stats { return runCache.Stats() }

// ResetRunCache drops every cached execution from memory, for tests and
// memory pressure relief in long sweeps. The disk tier (if installed)
// is untouched; use DisableDiskRunCache to take it out of the path.
func ResetRunCache() { runCache.Reset() }

// SetRunCacheDir installs the on-disk tier of the run cache at dir
// (creating it if needed), so executions memoized by any process against
// the same directory are reusable here. It returns a function restoring
// the previous tier. An empty dir uninstalls the tier.
//
// The library default is no disk tier: `go test` and embedders stay
// hermetic unless they opt in. The flm CLI opts in at startup for every
// command except bench (see cmd/flm), honoring FLM_CACHE_DIR.
func SetRunCacheDir(dir string) (restore func(), err error) {
	if dir == "" {
		return runCache.SetStore(nil, nil), nil
	}
	store, err := runcache.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	return runCache.SetStore(store, RunCodec{}), nil
}

// DisableDiskRunCache removes the disk tier (if any), returning a
// restore function — the bench harness brackets its cold-run
// measurements with this.
func DisableDiskRunCache() (restore func()) { return runCache.SetStore(nil, nil) }

// RunCacheDir reports the directory of the installed disk tier, or ""
// when the cache is memory-only.
func RunCacheDir() string {
	if st := runCache.Store(); st != nil {
		return st.Dir()
	}
	return ""
}

// SetRunCacheBudget rebounds the L1 byte budget at runtime (negative =
// unbounded, zero = retain nothing), returning a restore function.
func SetRunCacheBudget(bytes int64) (restore func()) { return runCache.SetBudget(bytes) }

// systemKey builds the content-addressed key for one execution:
// (graph structure, per-node device fingerprint and input, rounds,
// recording options). It reports ok=false — after a cheap capability
// scan that touches no strings — when any device opts out.
func systemKey(sys *System, rounds int, opts ExecuteOpts) (string, bool) {
	for _, d := range sys.Devices {
		if _, ok := d.(Fingerprinter); !ok {
			return "", false
		}
	}
	g := sys.G
	h := runcache.NewHasher("sim.run/v1")
	h.Int(g.N())
	for u := 0; u < g.N(); u++ {
		h.Field(g.Name(u))
		for _, v := range g.Neighbors(u) {
			h.Int(v)
		}
		h.Int(-1) // neighbor-list terminator
	}
	for u := 0; u < g.N(); u++ {
		fp := sys.Devices[u].(Fingerprinter).DeviceFingerprint()
		if fp == "" {
			return "", false
		}
		h.Field(fp)
		h.Field(string(sys.Inputs[u]))
	}
	h.Int(rounds)
	h.Int(boolBit(opts.RecordSnapshots))
	h.Int(boolBit(opts.RecordEdges))
	// Delay schedules change delivery, so they are part of the execution's
	// identity. nil and all-inert schedules hash exactly like the
	// pre-asynchrony key so synchronous cache entries stay addressable.
	if opts.Delays != nil && !opts.Delays.Empty() {
		h.Field("delays/v1")
		for _, r := range opts.Delays.Rules {
			if r.Extra <= 0 {
				continue
			}
			h.Field(r.From)
			h.Field(r.To)
			h.Int(r.Round)
			h.Int(r.Extra)
		}
	}
	return h.Sum(), true
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}
