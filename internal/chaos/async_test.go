package chaos

import (
	"context"
	"reflect"
	"testing"

	"flm/internal/sim"
)

// asyncOpts is the generator mode of the pinned async smoke (CI's
// second chaos job and E20).
var asyncOpts = GenOpts{Async: true, Dead: true}

// TestZeroOptsMatchesNewSchedule: GenOpts{} must be byte-identical to
// the historical generator — the guarantee that keeps every pinned
// sync seed (CI smoke, E18, this package's tests) stable.
func TestZeroOptsMatchesNewSchedule(t *testing.T) {
	for i := 0; i < 128; i++ {
		a := NewSchedule(pinnedSeed, i)
		b := NewScheduleWith(pinnedSeed, i, GenOpts{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: zero-opts schedule diverged from NewSchedule:\n%+v\n%+v", i, a, b)
		}
	}
}

// TestAsyncScheduleDeterminism: extended schedules are pure functions
// of (seed, index, opts) too.
func TestAsyncScheduleDeterminism(t *testing.T) {
	sawDelays, sawInitdead, sawDead := false, false, false
	for i := 0; i < 128; i++ {
		a := NewScheduleWith(AsyncSmokeSeed, i, asyncOpts)
		b := NewScheduleWith(AsyncSmokeSeed, i, asyncOpts)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d async schedules diverge:\n%+v\n%+v", i, a, b)
		}
		if len(a.Delays) > 0 {
			sawDelays = true
		}
		if a.Protocol == "initdead" {
			sawInitdead = true
			if a.Adequate != (a.N > 2*a.F) {
				t.Errorf("trial %d: initdead adequacy misclassified: n=%d t=%d adequate=%v",
					i, a.N, a.F, a.Adequate)
			}
			if len(a.Actions) > a.F {
				t.Errorf("trial %d: %d dead nodes exceeds budget t=%d", i, len(a.Actions), a.F)
			}
			for _, act := range a.Actions {
				if act.Strategy != "dead" {
					t.Errorf("trial %d: initdead trial drew strategy %q", i, act.Strategy)
				}
				sawDead = true
			}
		} else if len(a.Delays) > 0 && a.Adequate {
			t.Errorf("trial %d: delayed sync-panel trial still classified adequate", i)
		}
	}
	if !sawDelays || !sawInitdead || !sawDead {
		t.Fatalf("generator coverage hole: delays=%v initdead=%v dead=%v", sawDelays, sawInitdead, sawDead)
	}
}

// TestAsyncPanelPinned pins the async smoke pair used by CI and E20:
// all adequate configurations (including every n > 2t initdead trial,
// dead subsets and bounded delays included) stay green, the inadequate
// side produces findings, and every finding shrinks to a schedule that
// still violates.
func TestAsyncPanelPinned(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Seed: AsyncSmokeSeed, Trials: AsyncSmokeTrials, Async: true, Dead: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("unexpected failures:\n%s", rep.Render())
	}
	if len(rep.Expected) == 0 {
		t.Fatal("no findings; the async panel lost its teeth")
	}
	sawInitdeadFinding, sawDelayFinding := false, false
	for _, f := range rep.Expected {
		if f.Schedule.Protocol == "initdead" {
			sawInitdeadFinding = true
		}
		if len(f.Schedule.Delays) > 0 {
			sawDelayFinding = true
		}
		if f.Shrunk == nil {
			t.Errorf("trial %d violation was not shrunk", f.Trial)
			continue
		}
		if !violates(*f.Shrunk) {
			t.Errorf("trial %d shrunk schedule no longer violates: %s", f.Trial, f.Shrunk.Describe())
		}
		if len(f.Shrunk.Delays) > len(f.Schedule.Delays) {
			t.Errorf("trial %d shrink grew the delay schedule: %d > %d rules",
				f.Trial, len(f.Shrunk.Delays), len(f.Schedule.Delays))
		}
	}
	if !sawInitdeadFinding {
		t.Error("pinned async window produced no initdead finding")
	}
	if !sawDelayFinding {
		t.Error("pinned async window produced no delay-schedule finding")
	}
}

// TestAsyncReportDeterministicAcrossWorkers: the full async report —
// shrinking included — is byte-identical at any fan-out.
func TestAsyncReportDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		rep, err := Run(context.Background(), Config{
			Seed: AsyncSmokeSeed, Trials: AsyncSmokeTrials, Workers: workers, Async: true, Dead: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Render()
	}
	if one, four := render(1), render(4); one != four {
		t.Fatalf("async reports diverge across worker counts:\n--- 1 worker ---\n%s--- 4 workers ---\n%s", one, four)
	}
}

// violatingSchedules collects violating schedules from a generator
// window, capped.
func violatingSchedules(t *testing.T, seed int64, o GenOpts, window, max int) []Schedule {
	t.Helper()
	var out []Schedule
	for i := 0; i < window && len(out) < max; i++ {
		s := NewScheduleWith(seed, i, o)
		if violates(s) {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		t.Skip("no violating schedule in the window")
	}
	return out
}

// TestShrinkIdempotent: shrinking a shrunk schedule is a no-op, for
// both the Byzantine panel and delay-schedule counterexamples. A
// second shrink that finds more to remove would mean the first pass
// stopped short of its fixpoint.
func TestShrinkIdempotent(t *testing.T) {
	modes := []struct {
		name string
		seed int64
		opts GenOpts
	}{
		{"byzantine", pinnedSeed, GenOpts{}},
		{"async", AsyncSmokeSeed, asyncOpts},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			for _, s := range violatingSchedules(t, mode.seed, mode.opts, 64, 3) {
				once, ok := Shrink(s)
				if !ok {
					t.Fatal("violating schedule did not shrink")
				}
				twice, ok := Shrink(once)
				if !ok {
					t.Fatal("shrunk schedule no longer violates")
				}
				if !reflect.DeepEqual(once, twice) {
					t.Errorf("shrink not idempotent:\nonce:  %+v\ntwice: %+v", once, twice)
				}
			}
		})
	}
}

// TestShrinkDelayMinimal: a shrunk delay schedule is 1-minimal —
// dropping any remaining rule, or weakening any remaining rule's extra
// delay, loses the violation.
func TestShrinkDelayMinimal(t *testing.T) {
	checked := 0
	for i := 0; i < 64 && checked < 3; i++ {
		s := NewScheduleWith(AsyncSmokeSeed, i, asyncOpts)
		if len(s.Delays) == 0 || !violates(s) {
			continue
		}
		shrunk, ok := Shrink(s)
		if !ok {
			t.Fatalf("trial %d violates but Shrink disagreed", i)
		}
		for j := range shrunk.Delays {
			cand := shrunk
			cand.Delays = append(append([]sim.DelayRule(nil), shrunk.Delays[:j]...), shrunk.Delays[j+1:]...)
			if violates(cand) {
				t.Errorf("trial %d not 1-minimal: dropping delay rule %d still violates", i, j)
			}
			for extra := shrunk.Delays[j].Extra - 1; extra >= 1; extra-- {
				cand := shrunk
				cand.Delays = append([]sim.DelayRule(nil), shrunk.Delays...)
				cand.Delays[j].Extra = extra
				if violates(cand) {
					t.Errorf("trial %d not 1-minimal: weakening delay rule %d to +%d still violates",
						i, j, extra)
				}
			}
		}
		checked++
	}
	if checked == 0 {
		t.Skip("no violating delay schedule in the pinned window")
	}
}
