package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"runtime/pprof"

	"flm"
)

// cmdChaos runs the randomized adversary harness. Exit status encodes
// the verdict: 0 when every adequate configuration stayed green
// (expected violations on inadequate graphs do not fail the run), 1
// when an adequate configuration was violated or a trial faulted.
func cmdChaos(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "master seed; every trial derives from (seed, index)")
	trials := fs.Int("trials", 256, "number of attack schedules to generate and run")
	timeout := fs.Duration("timeout", flm.ChaosDefaultTimeout, "per-trial wall budget")
	workers := fs.Int("workers", 0, "parallel trials (0 = FLM_WORKERS or GOMAXPROCS)")
	noShrink := fs.Bool("noshrink", false, "skip counterexample shrinking")
	async := fs.Bool("async", false, "adversarial asynchrony: every panel trial runs under a seeded delay schedule (and delay rules join the shrinker)")
	deadset := fs.Bool("deadset", false, "initially-dead fault family: seeded dead subsets plus the FLP §4 initdead protocol on both sides of n > 2t")
	tracePath := fs.String("trace", "", "write a JSONL instrumentation trace (spans+metrics) to this file; FLM_TRACE is the env fallback")
	obsListen := fs.String("obs-listen", "", "serve live /metrics, /healthz, /progress, and /debug/pprof on this address for the duration of the run; FLM_OBS_LISTEN is the env fallback")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(out, "chaos: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	stop, err := startTrace(traceTarget(*tracePath), out)
	if err != nil {
		fmt.Fprintf(out, "chaos: %v\n", err)
		return 1
	}
	defer stop()
	sess, err := startObs(obsListenTarget(*obsListen))
	if err != nil {
		fmt.Fprintf(out, "chaos: %v\n", err)
		return 1
	}
	defer sess.stop()
	// Label the harness's pprof context so CPU profiles attribute sweep
	// worker samples to the chaos run (and per-worker via sweep_worker).
	ctx := pprof.WithLabels(context.Background(), pprof.Labels("flm_cmd", "chaos"))
	rep, err := flm.RunChaos(ctx, flm.ChaosConfig{
		Seed:     *seed,
		Trials:   *trials,
		Timeout:  *timeout,
		Workers:  *workers,
		NoShrink: *noShrink,
		Async:    *async,
		Dead:     *deadset,
	})
	if err != nil {
		fmt.Fprintf(out, "chaos: %v\n", err)
		return 2
	}
	fmt.Fprint(out, rep.Render())
	if !rep.OK() {
		return 1
	}
	return 0
}
