package weak

import (
	"fmt"
	"math/big"
	"sort"

	"flm/internal/graph"
)

// This file mechanizes footnote 4 of FLM85: if transmission delays are
// not bounded away from zero (senders may specify arbitrarily small
// delays), weak consensus is solvable with ANY number of faults — which
// is why Theorem 2 needs the Bounded-Delay Locality axiom.
//
// The footnote's algorithm: nodes start at time 0 and decide at time 1.
// Everyone broadcasts its value at time 0, specifying arrival at 1/2. A
// node first detecting disagreement or failure at time t broadcasts
// "failure detected, choose the default", specifying arrival at (1+t)/2 —
// still before 1. At time 1 a node chooses the default if it ever saw an
// anomaly, and its own (= the common) value otherwise.
//
// ZeroDelayRun executes this algorithm against a scripted adversary. The
// MinDelay parameter introduces the paper's realistic assumption: every
// message arrives at least MinDelay after it is sent. With MinDelay = 0
// the algorithm is correct against every adversary; with MinDelay > 0 a
// late equivocation leaves no time to warn the others, and agreement
// breaks — mechanically demonstrating why the axiom is necessary.

// ZDMessage is one adversary transmission: a value or failure claim
// arriving at a chosen time.
type ZDMessage struct {
	To      string
	Value   string   // "" for a failure-notice message
	Failure bool     // true: "failure detected, choose default"
	Arrive  *big.Rat // requested arrival time (subject to MinDelay)
}

// ZDStrategy scripts a faulty node: given its name and neighbors, it
// returns all transmissions it will ever make. Arrival times are
// clamped upward by the run's MinDelay (a message "sent at time 0"
// cannot arrive before MinDelay; failure relays sent at time t cannot
// arrive before t+MinDelay).
type ZDStrategy func(self string, neighbors []string) []ZDMessage

// ZDResult records the outcome of a zero-delay run.
type ZDResult struct {
	Decisions map[string]string // per correct node
	Anomaly   map[string]bool   // which correct nodes detected anomalies
}

type zdEvent struct {
	at      *big.Rat
	to      string
	from    string
	value   string
	failure bool
	audit   bool // the node's silence check, just after values were due
}

// ZeroDelayRun executes footnote 4's algorithm on a complete graph with
// the given Boolean inputs, scripted faulty nodes, and minimum delay
// (zero for the footnote's idealized network).
func ZeroDelayRun(g *graph.Graph, inputs map[string]string, faulty map[string]ZDStrategy, minDelay *big.Rat) (*ZDResult, error) {
	if minDelay == nil || minDelay.Sign() < 0 {
		return nil, fmt.Errorf("weak: minimum delay must be a non-negative rational")
	}
	one := big.NewRat(1, 1)
	half := big.NewRat(1, 2)

	correct := make(map[string]bool, g.N())
	for _, name := range g.Names() {
		if _, bad := faulty[name]; !bad {
			if v := inputs[name]; v != "0" && v != "1" {
				return nil, fmt.Errorf("weak: node %s lacks a boolean input", name)
			}
			correct[name] = true
		}
	}

	var events []zdEvent
	clampedArrival := func(sentAt, requested *big.Rat) *big.Rat {
		earliest := new(big.Rat).Add(sentAt, minDelay)
		if requested.Cmp(earliest) < 0 {
			return earliest
		}
		return new(big.Rat).Set(requested)
	}
	// Correct nodes broadcast their value at time 0 to arrive at 1/2.
	zero := new(big.Rat)
	for _, name := range g.Names() {
		if !correct[name] {
			continue
		}
		u := g.MustIndex(name)
		for _, v := range g.Neighbors(u) {
			events = append(events, zdEvent{
				at: clampedArrival(zero, half), to: g.Name(v), from: name, value: inputs[name],
			})
		}
	}
	// Faulty scripts (sent "at time 0" for value messages, or treated as
	// sent MinDelay before the requested arrival for failure notices,
	// whichever is later — the adversary controls its own send times, so
	// only the non-negativity of delay binds it).
	for name, strat := range faulty {
		u := g.MustIndex(name)
		allowed := map[string]bool{}
		var nbs []string
		for _, v := range g.Neighbors(u) {
			allowed[g.Name(v)] = true
			nbs = append(nbs, g.Name(v))
		}
		sort.Strings(nbs)
		for _, m := range strat(name, nbs) {
			if !allowed[m.To] {
				return nil, fmt.Errorf("weak: faulty %s scripts a message to non-neighbor %s", name, m.To)
			}
			if m.Arrive == nil || m.Arrive.Sign() < 0 {
				return nil, fmt.Errorf("weak: faulty %s scripts a message with no arrival time", name)
			}
			arrive := m.Arrive
			if arrive.Cmp(minDelay) < 0 {
				arrive = minDelay // cannot beat the minimum delay from time 0
			}
			events = append(events, zdEvent{
				at: new(big.Rat).Set(arrive), to: m.To, from: name, value: m.Value, failure: m.Failure,
			})
		}
	}

	// Values are due at max(1/2, minDelay); silence is detectable right
	// after that instant, leaving time to warn everyone (that is the
	// footnote's point — and what a positive minimum delay destroys for
	// anomalies that surface later).
	auditAt := new(big.Rat).Set(half)
	if minDelay.Cmp(auditAt) > 0 {
		auditAt.Set(minDelay)
	}
	auditAt.Add(auditAt, big.NewRat(1, 16))
	for name := range correct {
		events = append(events, zdEvent{at: new(big.Rat).Set(auditAt), to: name, audit: true})
	}

	anomaly := make(map[string]bool, len(correct))
	relayed := make(map[string]bool, len(correct))
	heard := make(map[string]map[string]string, len(correct)) // node -> sender -> value
	for name := range correct {
		heard[name] = map[string]string{}
	}

	// detect triggers a node's first anomaly at time t: it relays the
	// failure notice to everyone, arriving at (1+t)/2 (clamped by the
	// minimum delay).
	var detect func(name string, t *big.Rat)
	detect = func(name string, t *big.Rat) {
		if anomaly[name] {
			return
		}
		anomaly[name] = true
		if relayed[name] {
			return
		}
		relayed[name] = true
		arrival := new(big.Rat).Add(one, t)
		arrival.Quo(arrival, big.NewRat(2, 1))
		u := g.MustIndex(name)
		for _, v := range g.Neighbors(u) {
			events = append(events, zdEvent{
				at: clampedArrival(t, arrival), to: g.Name(v), from: name, failure: true,
			})
		}
	}

	// Process deliveries in time order until the decision instant. The
	// event list grows as relays are scheduled; a simple re-sort per
	// step keeps the logic obvious (event counts are tiny).
	processed := 0
	for {
		sort.SliceStable(events[processed:], func(i, j int) bool {
			a, b := events[processed+i], events[processed+j]
			if c := a.at.Cmp(b.at); c != 0 {
				return c < 0
			}
			if a.to != b.to {
				return a.to < b.to
			}
			return a.from < b.from
		})
		if processed >= len(events) {
			break
		}
		e := events[processed]
		processed++
		if e.at.Cmp(one) >= 0 {
			continue // arrives at or after the decision instant: too late
		}
		if !correct[e.to] {
			continue
		}
		switch {
		case e.audit:
			// Every neighbor's value was due by now; silence is a fault.
			u := g.MustIndex(e.to)
			for _, v := range g.Neighbors(u) {
				if _, ok := heard[e.to][g.Name(v)]; !ok {
					detect(e.to, e.at)
					break
				}
			}
		case e.failure:
			detect(e.to, e.at)
		default:
			if e.value != "0" && e.value != "1" {
				detect(e.to, e.at) // malformed traffic is a fault symptom
				continue
			}
			heard[e.to][e.from] = e.value
			if e.value != inputs[e.to] {
				detect(e.to, e.at) // disagreement
			}
		}
	}

	res := &ZDResult{Decisions: map[string]string{}, Anomaly: map[string]bool{}}
	for name := range correct {
		res.Anomaly[name] = anomaly[name]
		if anomaly[name] {
			res.Decisions[name] = "0" // the default
		} else {
			res.Decisions[name] = inputs[name]
		}
	}
	return res, nil
}

// CheckZD evaluates weak agreement on a zero-delay result.
func CheckZD(res *ZDResult, inputs map[string]string, allCorrect bool) Report {
	var rep Report
	var names []string
	for name := range res.Decisions {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return rep
	}
	first := res.Decisions[names[0]]
	for _, name := range names[1:] {
		if res.Decisions[name] != first {
			rep.Agreement = fmt.Errorf("weak: %s chose %s but %s chose %s",
				names[0], first, name, res.Decisions[name])
			break
		}
	}
	if allCorrect {
		unanimous := true
		for _, name := range names[1:] {
			if inputs[name] != inputs[names[0]] {
				unanimous = false
			}
		}
		if unanimous {
			for _, name := range names {
				if res.Decisions[name] != inputs[name] {
					rep.Validity = fmt.Errorf("weak: unanimous all-correct input %s but %s chose %s",
						inputs[name], name, res.Decisions[name])
					break
				}
			}
		}
	}
	return rep
}
