package core

import (
	"fmt"

	"flm/internal/firingsquad"
	"flm/internal/graph"
	"flm/internal/sim"
	"flm/internal/weak"
)

// This file generalizes the 4k-ring arguments of Theorems 2 and 4 from
// the triangle to arbitrary graphs with n <= 3f nodes ("the case for
// general f follows immediately, just as above"): partition the nodes
// into blocks a, b, c of size <= f, build the M-copy cyclic covering
// with the a-c edges crossed (a ring of blocks ...a_i b_i c_i a_{i+1}...),
// give half the copies input 1 and half input 0, and splice the three
// block-pair scenarios of every copy:
//
//	P1_i = a_i ∪ b_i      (c faulty: faces c_{i+1} toward a, c_i toward b)
//	P2_i = b_i ∪ c_i      (a faulty: faces a_i toward b, a_{i-1} toward c)
//	P3_i = a_i ∪ c_{i+1}  (b faulty: faces b_i toward a, b_{i+1} toward c)
//
// Consecutive scenarios overlap in a whole block, chaining every node's
// choice, while the Bounded-Delay axiom pins the middle copies to the
// unanimous base runs.

// blockRingScenarios enumerates the 3M block-pair scenarios.
func blockRingScenarios(g *graph.Graph, m int, aSet, bSet, cSet []int) [][]int {
	n := g.N()
	at := func(nodes []int, copyID int) []int {
		out := make([]int, len(nodes))
		for i, x := range nodes {
			out[i] = ((copyID%m)+m)%m*n + x
		}
		return out
	}
	var scenarios [][]int
	for i := 0; i < m; i++ {
		scenarios = append(scenarios,
			append(at(aSet, i), at(bSet, i)...),
			append(at(bSet, i), at(cSet, i)...),
			append(at(aSet, i), at(cSet, i+1)...),
		)
	}
	return scenarios
}

// buildBlockRing validates the partition and constructs the M-copy
// covering installation with half-and-half inputs.
func buildBlockRing(g *graph.Graph, f int, aSet, bSet, cSet []int, m int, builders map[string]sim.Builder) (*Installation, error) {
	if g.N() > 3*f {
		return nil, fmt.Errorf("core: graph has %d > 3f = %d nodes; not inadequate by node count", g.N(), 3*f)
	}
	if len(aSet) > f || len(bSet) > f || len(cSet) > f {
		return nil, fmt.Errorf("core: partition blocks must have at most f=%d nodes", f)
	}
	if len(aSet) == 0 || len(bSet) == 0 || len(cSet) == 0 {
		return nil, fmt.Errorf("core: partition blocks must be non-empty")
	}
	block := make([]int, g.N())
	for i := range block {
		block[i] = -1
	}
	for id, set := range [][]int{aSet, bSet, cSet} {
		for _, x := range set {
			if x < 0 || x >= g.N() || block[x] != -1 {
				return nil, fmt.Errorf("core: invalid partition at node %d", x)
			}
			block[x] = id
		}
	}
	for x, id := range block {
		if id == -1 {
			return nil, fmt.Errorf("core: node %s not covered by the partition", g.Name(x))
		}
	}
	cover := graph.CyclicCover(g, func(u, v int) bool {
		return block[u] == 0 && block[v] == 2
	}, m)
	if err := cover.Verify(); err != nil {
		return nil, err
	}
	return InstallCover(cover, builders, copyInputsRing(cover.S, g.N(), m, "1", "0"))
}

// WeakAgreementNodesRing mechanizes the general node bound of Theorem 2:
// weak agreement is impossible on any graph with n <= 3f nodes.
func WeakAgreementNodesRing(g *graph.Graph, f int, aSet, bSet, cSet []int, builders map[string]sim.Builder, device string, horizon int) (*ChainResult, error) {
	cr := &ChainResult{
		Theorem: "Theorem 2 (weak agreement, 3f+1 nodes, general case)",
		Problem: "weak Byzantine agreement",
		Device:  device,
		F:       f,
		G:       g,
	}
	base := make(map[string]*sim.Run, 2)
	tPrime := 0
	for _, bit := range []string{"0", "1"} {
		run, err := runGraphUniform(g, builders, sim.Input(bit), horizon)
		if err != nil {
			return nil, err
		}
		base[bit] = run
		name := "B" + bit
		cr.addLink(Link{
			Name: name, Splice: baseSplice(run),
			Expect:  fmt.Sprintf("all-correct unanimous %s: choice + validity force %s", bit, bit),
			Correct: run.G.Names(),
		})
		rep := weak.Check(run, run.G.Names(), true)
		if rep.Choice != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "choice", Detail: rep.Choice.Error()})
		}
		if rep.Agreement != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "agreement", Detail: rep.Agreement.Error()})
		}
		if rep.Validity != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "validity", Detail: rep.Validity.Error()})
		}
		for _, nodeName := range run.G.Names() {
			if d, _ := run.DecisionOf(nodeName); d.Round > tPrime {
				tPrime = d.Round
			}
		}
	}
	if cr.Contradicted() {
		return cr, nil
	}
	k := tPrime + 1
	m := 4 * k
	if horizon <= tPrime+1 {
		return nil, fmt.Errorf("core: horizon %d too small for decision round %d", horizon, tPrime)
	}
	inst, err := buildBlockRing(g, f, aSet, bSet, cSet, m, builders)
	if err != nil {
		return nil, err
	}
	runS, err := inst.Execute(horizon)
	if err != nil {
		return nil, err
	}
	cr.RunS = runS
	cr.CoverSize = inst.Cover.S.N()

	if err := checkCopyMiddles(runS, inst.Cover, base, g, m, k, map[string]string{"1": "1", "0": "0"}); err != nil {
		return nil, err
	}
	for idx, u := range blockRingScenarios(g, m, aSet, bSet, cSet) {
		name := fmt.Sprintf("E%d", idx)
		sp, err := SpliceScenario(inst, runS, u, builders)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		cr.addLink(Link{
			Name: name, Splice: sp,
			Expect:  "all correct nodes in this one-block-fault behavior must agree",
			Correct: sp.Correct, Faulty: sp.Faulty,
		})
		rep := weak.Check(sp.Run, sp.Correct, false)
		if rep.Choice != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "choice", Detail: rep.Choice.Error()})
		}
		if rep.Agreement != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "agreement", Detail: rep.Agreement.Error()})
		}
	}
	if !cr.Contradicted() {
		return cr, fmt.Errorf("core: block ring chained to agreement yet the halves differ — impossible:\n%s", cr)
	}
	return cr, nil
}

// FiringSquadNodesRing mechanizes the general node bound of Theorem 4.
func FiringSquadNodesRing(g *graph.Graph, f int, aSet, bSet, cSet []int, builders map[string]sim.Builder, device string, horizon int) (*ChainResult, error) {
	cr := &ChainResult{
		Theorem: "Theorem 4 (firing squad, 3f+1 nodes, general case)",
		Problem: "Byzantine firing squad",
		Device:  device,
		F:       f,
		G:       g,
	}
	base := make(map[string]*sim.Run, 2)
	fireTime := -1
	for _, bit := range []string{"0", "1"} {
		run, err := runGraphUniform(g, builders, sim.Input(bit), horizon)
		if err != nil {
			return nil, err
		}
		base[bit] = run
		name := "B" + bit
		stimulated := bit == "1"
		cr.addLink(Link{
			Name: name, Splice: baseSplice(run),
			Expect:  "base validity: fire simultaneously iff stimulated",
			Correct: run.G.Names(),
		})
		rep := firingsquad.Check(run, run.G.Names(), true, stimulated)
		if rep.Agreement != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "agreement", Detail: rep.Agreement.Error()})
		}
		if rep.Validity != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "validity", Detail: rep.Validity.Error()})
		}
		if stimulated {
			for _, nodeName := range run.G.Names() {
				if d, _ := run.DecisionOf(nodeName); d.Value == firingsquad.Fired && d.Round > fireTime {
					fireTime = d.Round
				}
			}
		}
	}
	if cr.Contradicted() {
		return cr, nil
	}
	k := fireTime + 1
	m := 4 * k
	if horizon <= fireTime+1 {
		return nil, fmt.Errorf("core: horizon %d too small for fire time %d", horizon, fireTime)
	}
	inst, err := buildBlockRing(g, f, aSet, bSet, cSet, m, builders)
	if err != nil {
		return nil, err
	}
	runS, err := inst.Execute(horizon)
	if err != nil {
		return nil, err
	}
	cr.RunS = runS
	cr.CoverSize = inst.Cover.S.N()

	if err := checkCopyMiddles(runS, inst.Cover, base, g, m, k,
		map[string]string{"1": firingsquad.Fired, "0": ""}); err != nil {
		return nil, err
	}
	for idx, u := range blockRingScenarios(g, m, aSet, bSet, cSet) {
		name := fmt.Sprintf("E%d", idx)
		sp, err := SpliceScenario(inst, runS, u, builders)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", name, err)
		}
		cr.addLink(Link{
			Name: name, Splice: sp,
			Expect:  "correct nodes fire simultaneously or not at all",
			Correct: sp.Correct, Faulty: sp.Faulty,
		})
		rep := firingsquad.Check(sp.Run, sp.Correct, false, false)
		if rep.Agreement != nil {
			cr.Violations = append(cr.Violations, Violation{Link: name, Condition: "agreement", Detail: rep.Agreement.Error()})
		}
	}
	if !cr.Contradicted() {
		return cr, fmt.Errorf("core: block ring chained to simultaneity yet the halves differ — impossible:\n%s", cr)
	}
	return cr, nil
}
