package clocksync

import (
	"math/big"

	"flm/internal/clockfn"
)

// This file instantiates Theorem 8 for the paper's Corollaries 12-15.
// Each corollary fixes the clock laws p, q and the lower envelope l and
// states that no devices can synchronize a constant closer than the
// trivial l(q(t)) - l(p(t)); the engine demonstrates it by defeating any
// devices that claim an improvement of alpha.

// TrivialGap returns l(q(t)) - l(p(t)) at real time t — the
// synchronization achieved by the no-communication lower-envelope device,
// which Theorem 8 shows is optimal on inadequate graphs.
func (p Params) TrivialGap(t float64) float64 {
	return p.L.At(p.Q.Float().At(t)) - p.L.At(p.P.Float().At(t))
}

// Corollary12 instantiates linear-envelope synchronization (the [DHS]
// setting): p(t)=t, q(t)=rt, l(t)=a*t+b, u(t)=c*t+d. Claiming any
// constant agreement bound within those envelopes implies beating the
// trivial a(r-1)t synchronization by a constant, which Theorem 8 forbids.
func Corollary12(rNum, rDen int64, a, b, c, d, alpha float64, tPrime *big.Rat) Params {
	return Params{
		P:      clockfn.RatIdentity(),
		Q:      clockfn.NewRatLinear(rNum, rDen, 0, 1),
		L:      clockfn.Linear{Rate: a, Off: b},
		U:      clockfn.Linear{Rate: c, Off: d},
		Alpha:  alpha,
		TPrime: tPrime,
		Delta:  big.NewRat(1, 2),
	}
}

// Corollary13 is the rate-difference bound: with p(t)=t, q(t)=rt and
// l(t)=a*t+b, no devices can synchronize a constant closer than art-at.
func Corollary13(rNum, rDen int64, a, b, alpha float64, tPrime *big.Rat) Params {
	// Any upper envelope works; the paper notes its choice is
	// immaterial. Use u = l + constant.
	return Params{
		P:      clockfn.RatIdentity(),
		Q:      clockfn.NewRatLinear(rNum, rDen, 0, 1),
		L:      clockfn.Linear{Rate: a, Off: b},
		U:      clockfn.Linear{Rate: a, Off: b + 4},
		Alpha:  alpha,
		TPrime: tPrime,
		Delta:  big.NewRat(1, 2),
	}
}

// Corollary14 is the offset-difference bound: with p(t)=t, q(t)=t+c and
// l(t)=a*t+b, no devices can synchronize a constant closer than a*c.
// Here h(t) = t+c, so the ring's hardware clocks differ by offsets only.
func Corollary14(cNum, cDen int64, a, b, alpha float64, tPrime *big.Rat) Params {
	return Params{
		P:      clockfn.RatIdentity(),
		Q:      clockfn.NewRatLinear(1, 1, cNum, cDen),
		L:      clockfn.Linear{Rate: a, Off: b},
		U:      clockfn.Linear{Rate: a, Off: b + 4},
		Alpha:  alpha,
		TPrime: tPrime,
		Delta:  big.NewRat(1, 2),
	}
}

// Corollary15 is the logarithmic-clock bound: with p(t)=t, q(t)=rt and
// l(t)=log2(t), no devices can synchronize a constant closer than
// log2(r) — diverging linear clocks can be tamed to a constant gap by
// running logical clocks logarithmically, but never closer than log2(r).
func Corollary15(rNum, rDen int64, alpha float64, tPrime *big.Rat) Params {
	return Params{
		P:      clockfn.RatIdentity(),
		Q:      clockfn.NewRatLinear(rNum, rDen, 0, 1),
		L:      clockfn.Log2{},
		U:      clockfn.Compose(clockfn.Linear{Rate: 1, Off: 3}, clockfn.Log2{}),
		Alpha:  alpha,
		TPrime: tPrime,
		Delta:  big.NewRat(1, 2),
	}
}
