// Package timedsim is the continuous-time execution model for the FLM85
// clock synchronization results (Section 7). Nodes carry hardware clocks
// (exact rational affine functions of real time) and act only at hardware
// ticks — real times t with D(t) = kΔ — so every aspect of timing derives
// from hardware clock states. Messages are delivered instantly but are
// consumable only at receiver ticks strictly later than the send time.
//
// Because all scheduling is exact rational arithmetic and all behavior is
// clock-driven, the model satisfies the paper's Scaling axiom exactly:
// composing every hardware clock with an increasing affine h reparametrizes
// all event times by h⁻¹ and changes no tick's observable state. The
// Locality and Fault axioms hold as in the synchronous model: state
// updates depend only on local inbox contents, and scripted senders can
// replay any recorded edge behavior.
package timedsim

import (
	"fmt"
	"math/big"
	"sort"

	"flm/internal/clockfn"
	"flm/internal/graph"
)

// Message is a delivered payload with its exact send time.
type Message struct {
	From    string
	Payload string
	SentAt  *big.Rat
}

// Send is an outgoing payload addressed to a neighbor.
type Send struct {
	To      string
	Payload string
}

// Device is a clock-synchronization device: it acts at hardware ticks and
// exposes a logical clock that is a function of its state and the current
// hardware reading.
type Device interface {
	Init(self string, neighbors []string)
	// Tick is invoked at the device's k-th hardware tick with the exact
	// hardware reading and the messages that became consumable since the
	// previous tick (sorted by send time, then sender).
	Tick(k int, hw *big.Rat, inbox []Message) []Send
	// Logical returns the logical clock value for a given hardware
	// reading, using the device's current correction state.
	Logical(hw *big.Rat) float64
	// Snapshot canonically encodes the device state.
	Snapshot() string
}

// ScriptedSend is one replayed transmission of a faulty node.
type ScriptedSend struct {
	At      *big.Rat
	To      string
	Payload string
}

// Node configures one node: either a Device (correct) or a Script
// (faulty replay, the Fault axiom device for the timed model). Every node
// has a hardware clock.
type Node struct {
	Device Device
	Script []ScriptedSend
	Clock  clockfn.RatLinear
}

// System is a communication graph with timed nodes and a tick spacing
// Delta (in hardware-clock units). RealDelay, when non-nil and positive,
// imposes a minimum REAL-TIME transmission delay on every message. The
// paper's Scaling axiom then fails — real-time delays do not scale with
// the hardware clocks — which is exactly the weakening FLM85 names as
// making clock synchronization potentially possible on inadequate
// graphs; TestScalingAxiomBrokenByRealDelay demonstrates the failure.
type System struct {
	G         *graph.Graph
	Nodes     []Node
	Delta     *big.Rat
	RealDelay *big.Rat
}

// TickRecord is one observed tick of one node.
type TickRecord struct {
	Index    int
	Time     *big.Rat // real time
	HW       *big.Rat // hardware reading (= Index * Delta)
	Snapshot string
	Logical  float64
}

// SendRecord is one observed transmission on a directed edge.
type SendRecord struct {
	At      *big.Rat
	Payload string
}

// Run is a recorded timed system behavior.
type Run struct {
	G            *graph.Graph
	Until        *big.Rat
	Ticks        [][]TickRecord
	Sends        map[graph.Edge][]SendRecord
	FinalLogical []float64  // logical clocks evaluated at time Until
	FinalHW      []*big.Rat // hardware readings at time Until
}

// Execute runs the system from real time 0 through real time until
// (inclusive) and records the behavior.
func Execute(sys *System, until *big.Rat) (*Run, error) {
	g := sys.G
	if len(sys.Nodes) != g.N() {
		return nil, fmt.Errorf("timedsim: %d nodes configured for %d-node graph", len(sys.Nodes), g.N())
	}
	if sys.Delta == nil || sys.Delta.Sign() <= 0 {
		return nil, fmt.Errorf("timedsim: tick spacing must be positive")
	}
	run := &Run{
		G:            g,
		Until:        new(big.Rat).Set(until),
		Ticks:        make([][]TickRecord, g.N()),
		Sends:        make(map[graph.Edge][]SendRecord),
		FinalLogical: make([]float64, g.N()),
		FinalHW:      make([]*big.Rat, g.N()),
	}
	pending := make([][]Message, g.N())

	// nextTick[k] for device nodes: the next tick index; -1 for script
	// nodes. scriptPos for script nodes. nextTickTime caches the real
	// time of the next tick so the event scan does no clock arithmetic.
	nextTick := make([]int64, g.N())
	nextTickTime := make([]*big.Rat, g.N())
	scriptPos := make([]int, g.N())
	tickTime := func(u int, k int64) *big.Rat {
		hw := new(big.Rat).SetInt64(k)
		hw.Mul(hw, sys.Delta)
		return sys.Nodes[u].Clock.Inv(hw)
	}
	for u := 0; u < g.N(); u++ {
		node := sys.Nodes[u]
		if node.Clock.Rate == nil || node.Clock.Rate.Sign() <= 0 {
			return nil, fmt.Errorf("timedsim: node %s lacks an increasing hardware clock", g.Name(u))
		}
		if node.Device != nil {
			node.Device.Init(g.Name(u), neighborNames(g, u))
			// Devices begin at hardware clock 0: tick k happens when the
			// hardware reads k*Delta, wherever that falls in (possibly
			// negative) real time. Anchoring to hardware rather than
			// real time is what makes the Scaling axiom hold exactly —
			// real time is unobservable in this model.
			nextTick[u] = 0
			nextTickTime[u] = tickTime(u, 0)
		} else {
			nextTick[u] = -1
			// Scripts must be sorted by time for deterministic replay.
			script := node.Script
			sorted := sort.SliceIsSorted(script, func(i, j int) bool {
				return script[i].At.Cmp(script[j].At) < 0
			})
			if !sorted {
				return nil, fmt.Errorf("timedsim: script for node %s not sorted by time", g.Name(u))
			}
		}
	}

	for {
		// Find the earliest event: a device tick or a scripted send.
		bestNode, bestIsTick := -1, false
		var bestTime *big.Rat
		for u := 0; u < g.N(); u++ {
			node := sys.Nodes[u]
			if node.Device != nil {
				t := nextTickTime[u]
				if t.Cmp(until) > 0 {
					continue
				}
				if bestTime == nil || t.Cmp(bestTime) < 0 {
					bestTime, bestNode, bestIsTick = t, u, true
				}
			} else if scriptPos[u] < len(node.Script) {
				t := node.Script[scriptPos[u]].At
				if t.Cmp(until) > 0 {
					continue
				}
				if bestTime == nil || t.Cmp(bestTime) < 0 {
					bestTime, bestNode, bestIsTick = t, u, false
				}
			}
		}
		if bestNode < 0 {
			break
		}
		u, now := bestNode, bestTime
		node := sys.Nodes[u]
		if bestIsTick {
			k := nextTick[u]
			hw := new(big.Rat).SetInt64(k)
			hw.Mul(hw, sys.Delta)
			inbox, rest := splitConsumable(pending[u], now, sys.RealDelay)
			pending[u] = rest
			sends := node.Device.Tick(int(k), hw, inbox)
			for _, s := range sends {
				v, ok := g.Index(s.To)
				if !ok || !g.HasEdge(u, v) {
					return nil, fmt.Errorf("timedsim: node %s sent to non-neighbor %q", g.Name(u), s.To)
				}
				msg := Message{From: g.Name(u), Payload: s.Payload, SentAt: new(big.Rat).Set(now)}
				pending[v] = append(pending[v], msg)
				e := graph.Edge{From: g.Name(u), To: s.To}
				run.Sends[e] = append(run.Sends[e], SendRecord{At: msg.SentAt, Payload: s.Payload})
			}
			run.Ticks[u] = append(run.Ticks[u], TickRecord{
				Index:    int(k),
				Time:     new(big.Rat).Set(now),
				HW:       hw,
				Snapshot: node.Device.Snapshot(),
				Logical:  node.Device.Logical(hw),
			})
			nextTick[u] = k + 1
			nextTickTime[u] = tickTime(u, k+1)
		} else {
			s := node.Script[scriptPos[u]]
			scriptPos[u]++
			v, ok := g.Index(s.To)
			if !ok || !g.HasEdge(u, v) {
				return nil, fmt.Errorf("timedsim: script for %s sends to non-neighbor %q", g.Name(u), s.To)
			}
			msg := Message{From: g.Name(u), Payload: s.Payload, SentAt: new(big.Rat).Set(s.At)}
			pending[v] = append(pending[v], msg)
			e := graph.Edge{From: g.Name(u), To: s.To}
			run.Sends[e] = append(run.Sends[e], SendRecord{At: msg.SentAt, Payload: s.Payload})
		}
	}

	for u := 0; u < g.N(); u++ {
		node := sys.Nodes[u]
		run.FinalHW[u] = node.Clock.At(until)
		if node.Device != nil {
			run.FinalLogical[u] = node.Device.Logical(run.FinalHW[u])
		}
	}
	return run, nil
}

// splitConsumable returns the pending messages whose (send time + real
// delay) is strictly before now (sorted deterministically) and the
// remainder.
func splitConsumable(pending []Message, now, realDelay *big.Rat) (inbox, rest []Message) {
	for _, m := range pending {
		due := m.SentAt
		if realDelay != nil && realDelay.Sign() > 0 {
			due = new(big.Rat).Add(m.SentAt, realDelay)
		}
		if due.Cmp(now) < 0 {
			inbox = append(inbox, m)
		} else {
			rest = append(rest, m)
		}
	}
	sort.SliceStable(inbox, func(i, j int) bool {
		if c := inbox[i].SentAt.Cmp(inbox[j].SentAt); c != 0 {
			return c < 0
		}
		if inbox[i].From != inbox[j].From {
			return inbox[i].From < inbox[j].From
		}
		return inbox[i].Payload < inbox[j].Payload
	})
	return inbox, rest
}

func neighborNames(g *graph.Graph, u int) []string {
	nbs := g.Neighbors(u)
	names := make([]string, len(nbs))
	for i, v := range nbs {
		names[i] = g.Name(v)
	}
	sort.Strings(names)
	return names
}

// TicksOf returns the tick records of the named node.
func (r *Run) TicksOf(name string) ([]TickRecord, error) {
	u, ok := r.G.Index(name)
	if !ok {
		return nil, fmt.Errorf("timedsim: run has no node %q", name)
	}
	return r.Ticks[u], nil
}

// LogicalOf returns the named node's logical clock value at time Until.
func (r *Run) LogicalOf(name string) (float64, error) {
	u, ok := r.G.Index(name)
	if !ok {
		return 0, fmt.Errorf("timedsim: run has no node %q", name)
	}
	return r.FinalLogical[u], nil
}

// renamedDevice adapts a device built for a node of G to run at a node of
// a covering graph S, translating neighbor names both ways (the timed
// counterpart of the synchronous renamer).
type renamedDevice struct {
	inner Device
	toG   map[string]string
	toS   map[string]string
}

var _ Device = (*renamedDevice)(nil)

// Renamed wraps a device with an S-name/G-name translation.
func Renamed(inner Device, toG, toS map[string]string) Device {
	return &renamedDevice{inner: inner, toG: toG, toS: toS}
}

func (d *renamedDevice) Init(self string, neighbors []string) {
	// Inner device is initialized by the caller with its G-identity.
}

func (d *renamedDevice) Tick(k int, hw *big.Rat, inbox []Message) []Send {
	gInbox := make([]Message, 0, len(inbox))
	for _, m := range inbox {
		if gFrom, ok := d.toG[m.From]; ok {
			gInbox = append(gInbox, Message{From: gFrom, Payload: m.Payload, SentAt: m.SentAt})
		}
	}
	sends := d.inner.Tick(k, hw, gInbox)
	out := make([]Send, 0, len(sends))
	for _, s := range sends {
		if sTo, ok := d.toS[s.To]; ok {
			out = append(out, Send{To: sTo, Payload: s.Payload})
		}
	}
	return out
}

func (d *renamedDevice) Logical(hw *big.Rat) float64 { return d.inner.Logical(hw) }
func (d *renamedDevice) Snapshot() string            { return d.inner.Snapshot() }
