// Covering attack: a step-by-step mechanized walkthrough of FLM85's
// hexagon argument (Theorem 1, n=3, f=1), printing the covering graph,
// the covering run, each spliced behavior E1/E2/E3 with its faulty
// masquerader, and the contradiction.
package main

import (
	"fmt"
	"log"
	"strings"

	"flm"
)

func main() {
	// Step 1: the inadequate graph and its covering.
	tri := flm.Triangle()
	cover := flm.HexCover()
	fmt.Println("G = triangle (n = 3 = 3f with f = 1):")
	fmt.Print(indent(tri.String()))
	fmt.Println("S = hexagon covering (each ring node maps to a triangle node):")
	fmt.Print(indent(cover.S.String()))
	fmt.Print("phi: ")
	for i := 0; i < cover.S.N(); i++ {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s->%s", cover.S.Name(i), cover.G.Name(cover.Phi[i]))
	}
	fmt.Println()

	// Step 2: install the devices under test on S. Copy 0 (r0,r1,r2)
	// gets input 0, copy 1 (r3,r4,r5) gets input 1.
	builders := map[string]flm.Builder{}
	for _, name := range tri.Names() {
		builders[name] = flm.NewMajority(2)
	}
	inputs := map[string]flm.Input{
		"r0": "0", "r1": "0", "r2": "0",
		"r3": "1", "r4": "1", "r5": "1",
	}
	inst, err := flm.InstallCover(cover, builders, inputs)
	if err != nil {
		log.Fatal(err)
	}
	runS, err := inst.Execute(8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncovering run of S (majority devices; note the ring disagrees with itself):")
	fmt.Print(indent(runS.String()))

	// Step 3: splice the paper's three scenarios into behaviors of G.
	scenarios := []struct {
		name  string
		nodes []int
		story string
	}{
		{"E1", []int{1, 2}, "b,c correct with input 0; a is faulty, replaying r0->r1 and r5->r2 traffic"},
		{"E2", []int{2, 3}, "c,a correct (inputs 0,1); b is faulty, replaying r1->r2 and r4->r3 traffic"},
		{"E3", []int{3, 4}, "a,b correct with input 1; c is faulty, replaying r2->r3 and r5->r4 traffic"},
	}
	for _, sc := range scenarios {
		sp, err := flm.SpliceScenario(inst, runS, sc.nodes, builders)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: %s\n", sc.name, sc.story)
		fmt.Printf("  correct: %v, faulty: %v\n", sp.Correct, sp.Faulty)
		fmt.Println("  (locality self-check passed: spliced behaviors byte-identical to the covering scenario)")
		for _, name := range sp.Correct {
			d, _ := sp.Run.DecisionOf(name)
			fmt.Printf("  %s decided %q at round %d\n", name, d.Value, d.Round)
		}
	}

	// Step 4: the full engine run names the violated condition.
	cr, err := flm.ProveByzantineTriangle(builders, "majority", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull chain verdict:\n%s", cr)
	fmt.Println("No matter which device you plug in, one of E1/E2/E3 must break — that is Theorem 1.")
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "  " + l
	}
	return strings.Join(lines, "\n") + "\n"
}
