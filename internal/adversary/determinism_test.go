package adversary

import (
	"os"
	"strings"
	"testing"

	"flm/internal/byzantine"
	"flm/internal/graph"
	"flm/internal/sim"
	"flm/internal/sweep"
)

// transcript runs one fully-recorded EIG execution on K5 with a seeded
// Noise attacker and renders everything observable — inputs, edge
// traffic, snapshots, decisions — as one string. Byte equality of two
// transcripts means the executions were indistinguishable.
func transcript(t *testing.T, seed int64) string {
	t.Helper()
	g := graph.Complete(5)
	names := g.Names()
	honest := byzantine.NewEIG(1, names)
	proto := sim.Protocol{
		Builders: map[string]sim.Builder{},
		Inputs:   map[string]sim.Input{},
	}
	for i, name := range names {
		proto.Builders[name] = honest
		proto.Inputs[name] = sim.BoolInput(i%2 == 0)
	}
	proto.Builders[names[1]] = Noise(seed, "0", "1", "garbage")
	sys, err := sim.NewSystem(g, proto)
	if err != nil {
		t.Fatal(err)
	}
	rounds := byzantine.EIGRounds(1)
	run, err := sim.ExecuteWith(sys, rounds, sim.FullRecording)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(sim.Trace(run, 120))
	for _, name := range names {
		snaps, err := run.SnapshotsOf(name)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(name + ": " + strings.Join(snaps, "|") + "\n")
	}
	b.WriteString(run.String())
	return b.String()
}

// TestSeededAdversaryTranscriptsIdentical: the same seed and system
// produce byte-identical transcripts on repeated runs.
func TestSeededAdversaryTranscriptsIdentical(t *testing.T) {
	a, b := transcript(t, 42), transcript(t, 42)
	if a != b {
		t.Fatal("repeated runs with the same seed diverged")
	}
	if c := transcript(t, 43); c == a {
		t.Fatal("different seeds produced identical noise transcripts")
	}
}

// TestSeededAdversaryTranscriptsAcrossWorkers: a sweep of seeded attack
// runs yields the same transcripts whether executed by one worker or
// by four via FLM_WORKERS.
func TestSeededAdversaryTranscriptsAcrossWorkers(t *testing.T) {
	const trials = 8
	sweepTranscripts := func() []string {
		out, err := sweep.Map(trials, func(i int) (string, error) {
			return transcript(t, int64(100+i)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	oldEnv := os.Getenv(sweep.WorkersEnv)
	defer func() {
		os.Setenv(sweep.WorkersEnv, oldEnv)
		sweep.SetWorkers(0)
	}()

	sweep.SetWorkers(1)
	one := sweepTranscripts()

	os.Setenv(sweep.WorkersEnv, "4")
	sweep.SetWorkers(0) // defer to the env var
	four := sweepTranscripts()

	for i := range one {
		if one[i] != four[i] {
			t.Fatalf("trial %d transcript differs between 1 worker and FLM_WORKERS=4", i)
		}
	}
}
