package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// This file is the metrics half of the layer: named atomic counters,
// gauges, and histograms, registered once at package init of the
// instrumented subsystem and snapshotable as JSON (the trace file's
// final "metrics" line) or expvar-style text. Updating a metric is an
// atomic op — no locks, no allocation — so instrumented hot paths may
// tick them unconditionally; by convention the engine only does so on
// its traced paths, keeping the disabled engine byte-for-byte identical
// to the uninstrumented one.

// Counter is a monotonically increasing counter.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates a distribution of non-negative integer samples
// (the engine records durations in microseconds) in power-of-two
// buckets: bucket i counts samples whose bit length is i, i.e. values in
// [2^(i-1), 2^i). Count, sum, and max are exact; the buckets bound any
// quantile within a factor of two, which is plenty for "where did the
// time go".
type Histogram struct {
	name    string
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [65]atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(v)].Add(1)
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Count uint64
	Sum   uint64
	Max   uint64
}

// Mean returns the average sample, or 0 with no samples.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Registry holds named metrics. Metric constructors are idempotent per
// name, so concurrent packages can share a series safely.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Metrics is the default registry; the engine's instrumentation
// registers everything here, and Tracer.Close snapshots it into the
// trace file.
var Metrics = NewRegistry()

// NewCounter returns the counter registered under name, creating it on
// first use.
func (r *Registry) NewCounter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// NewGauge returns the gauge registered under name, creating it on
// first use.
func (r *Registry) NewGauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// NewHistogram returns the histogram registered under name, creating it
// on first use.
func (r *Registry) NewHistogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	r.hists[name] = h
	return h
}

// NewCounter registers on the default registry.
func NewCounter(name string) *Counter { return Metrics.NewCounter(name) }

// NewGauge registers on the default registry.
func NewGauge(name string) *Gauge { return Metrics.NewGauge(name) }

// NewHistogram registers on the default registry.
func NewHistogram(name string) *Histogram { return Metrics.NewHistogram(name) }

// Snapshot is a consistent-enough view of a registry: each series is
// read atomically, the set of series under the lock.
type Snapshot struct {
	Counters map[string]uint64
	Gauges   map[string]int64
	Hists    map[string]HistogramSnapshot
}

// Snapshot captures every registered series.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]uint64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
		Hists:    make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Hists[name] = HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(), Max: h.max.Load()}
	}
	return s
}

// Reset zeroes every registered series (the series themselves stay
// registered, so pointers held by instrumented code remain valid). Used
// by per-command isolation in the CLI and by tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.count.Store(0)
		h.sum.Store(0)
		h.max.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
}

// sortedKeys returns map keys in stable order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders the snapshot in expvar-style lines
// ("name value\n"; histograms as count/mean/max), sorted by name.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Hists) {
		h := s.Hists[name]
		if _, err := fmt.Fprintf(w, "%s count=%d mean=%.1f max=%d\n", name, h.Count, h.Mean(), h.Max); err != nil {
			return err
		}
	}
	return nil
}

// AppendJSON renders the snapshot as the body of a metrics record
// (sorted keys, no trailing newline).
func (s Snapshot) AppendJSON(buf []byte) []byte {
	buf = append(buf, `"counters":{`...)
	for i, name := range sortedKeys(s.Counters) {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendJSONString(buf, name)
		buf = append(buf, ':')
		buf = appendUint(buf, s.Counters[name])
	}
	buf = append(buf, `},"gauges":{`...)
	for i, name := range sortedKeys(s.Gauges) {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendJSONString(buf, name)
		buf = append(buf, ':')
		buf = appendInt(buf, s.Gauges[name])
	}
	buf = append(buf, `},"hists":{`...)
	for i, name := range sortedKeys(s.Hists) {
		if i > 0 {
			buf = append(buf, ',')
		}
		h := s.Hists[name]
		buf = appendJSONString(buf, name)
		buf = append(buf, `:{"count":`...)
		buf = appendUint(buf, h.Count)
		buf = append(buf, `,"sum":`...)
		buf = appendUint(buf, h.Sum)
		buf = append(buf, `,"max":`...)
		buf = appendUint(buf, h.Max)
		buf = append(buf, '}')
	}
	return append(buf, '}')
}

// writeMetrics appends the snapshot as a "metrics" record.
func (t *Tracer) writeMetrics(s Snapshot) {
	at := t.now()
	t.writeRecord(func(buf []byte) []byte {
		buf = append(buf, `{"t":"metrics","at_us":`...)
		buf = appendInt(buf, at)
		buf = append(buf, ',')
		buf = s.AppendJSON(buf)
		return append(buf, '}')
	})
}
