package obs

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// appendUint/appendInt/appendFloat render numbers without the fmt
// machinery (which allocates).
func appendUint(buf []byte, v uint64) []byte { return strconv.AppendUint(buf, v, 10) }

func appendInt(buf []byte, v int64) []byte { return strconv.AppendInt(buf, v, 10) }

// appendFloat renders a float as JSON. NaN and infinities are not
// representable in JSON; they become null rather than corrupting the
// line.
func appendFloat(buf []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(buf, "null"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

const hexDigits = "0123456789abcdef"

// appendJSONString renders s as a JSON string literal. strconv's quoting
// is not used because it emits Go escapes (\x, \U) that are invalid
// JSON; this escaper covers the JSON grammar exactly: quote, backslash,
// and control characters below 0x20 (invalid UTF-8 bytes pass through —
// payload bytes are engine-generated and always valid UTF-8, and a
// replacement here would silently alter recorded traffic).
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		b := s[i]
		if b >= 0x20 && b != '"' && b != '\\' {
			_, size := utf8.DecodeRuneInString(s[i:])
			i += size
			continue
		}
		buf = append(buf, s[start:i]...)
		switch b {
		case '"':
			buf = append(buf, '\\', '"')
		case '\\':
			buf = append(buf, '\\', '\\')
		case '\n':
			buf = append(buf, '\\', 'n')
		case '\r':
			buf = append(buf, '\\', 'r')
		case '\t':
			buf = append(buf, '\\', 't')
		default:
			buf = append(buf, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xf])
		}
		i++
		start = i
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}
