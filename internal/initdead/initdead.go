// Package initdead implements the FLP Section 4 consensus protocol for
// initially-dead processes: n processes, at most t of which fail, and
// every failure happens before the protocol starts (a dead process never
// sends a single message). Fischer, Lynch and Paterson prove this is
// solvable — even with adversarial, unboundedly-delayed message
// delivery — exactly when n > 2t, which makes it the possibility
// baseline sitting right next to this repo's impossibility results: the
// same simulator, the same adversarial delay schedules, but a fault
// family weak enough that consensus survives.
//
// The protocol, restated for the round-based simulator:
//
//  1. Stage 1: every live process broadcasts its (id, input) record.
//     A process waits until it has records from L-1 = n-t-1 other
//     processes; those senders, in arrival order (ties within a round
//     broken by id), become its *predecessors*.
//  2. Stage 2: the process broadcasts its predecessor list, and from
//     then on floods its cumulative knowledge (all stage-1 and stage-2
//     records it has seen) whenever that knowledge grows. Flooded
//     knowledge is a monotone set, so reordered, collided, or
//     re-delivered messages merge idempotently — the property that
//     makes the protocol safe under adversarial asynchrony.
//  3. Decision: consider the directed graph with an edge p -> x for
//     every p in preds(x). A process that knows the predecessor lists
//     of a nonempty *predecessor-closed* set S (x in S implies
//     preds(x) in S) computes the strongly connected components of S
//     and takes the source component (no incoming edges) containing
//     the smallest id. It decides the majority input among that
//     component's members, ties broken by the smallest member's input.
//
// Why deciders agree when n > 2t: every member of a source SCC has all
// L-1 of its predecessors inside the SCC, so any source SCC has at
// least L = n-t members; two disjoint source SCCs would need
// 2(n-t) <= n processes, i.e. n <= 2t. So for n > 2t the source SCC of
// the full predecessor graph is unique — the paper's "initial clique" —
// and because any predecessor-closed S contains every ancestor of its
// members, the source SCC a process computes from its partial
// knowledge IS that unique global one. For n <= 2t the argument (and
// the protocol) breaks: PartitionDelays builds the delay schedule that
// splits the processes into two groups that each decide on their own
// inputs.
//
// All decision inputs are canonically sorted before use, so the
// protocol is deterministic for a fixed (system, delay schedule) pair
// and participates in the run cache via DeviceFingerprint.
package initdead

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"flm/internal/sim"
)

// Rounds returns the simulator round budget under which every live
// process is guaranteed to decide, given that every message delay is at
// most maxDelay extra rounds (0 = synchronous) on a complete graph:
// stage-1 records arrive by round maxDelay+1, so every live process
// fixes predecessors and broadcasts its stage-2 record by then, and
// that broadcast lands everywhere by round 2*maxDelay+2. Two rounds of
// slack cover the decide-after-step boundary.
func Rounds(maxDelay int) int {
	if maxDelay < 0 {
		maxDelay = 0
	}
	return 2*maxDelay + 4
}

// device is one live protocol instance.
type device struct {
	t         int
	self      string
	neighbors []string
	input     string

	s1      map[string]string   // id -> quoted input (stage-1 records)
	s2      map[string][]string // id -> sorted predecessor list (stage-2 records)
	arrived []string            // foreign stage-1 ids in arrival order
	fixed   bool                // predecessors have been fixed
	preds   []string            // own predecessors; empty until fixed
	changed bool                // knowledge grew since the last broadcast

	decided  bool
	decision string
}

var _ sim.Device = (*device)(nil)
var _ sim.Fingerprinter = (*device)(nil)

// New returns the honest builder for fault budget t. The instance
// derives n from its neighborhood (the protocol runs on the complete
// graph), so the same builder serves every node.
func New(t int) sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		d := &device{t: t}
		d.Init(self, neighbors, input)
		return d
	}
}

// DeviceFingerprint identifies the protocol and its only constructor
// parameter; self/neighbors/input are keyed by the execution cache.
func (d *device) DeviceFingerprint() string {
	return fmt.Sprintf("initdead/v1:t=%d", d.t)
}

func (d *device) Init(self string, neighbors []string, input sim.Input) {
	d.self = self
	d.neighbors = append([]string(nil), neighbors...)
	sort.Strings(d.neighbors)
	d.input = string(input)
	d.s1 = map[string]string{self: strconv.Quote(d.input)}
	d.s2 = map[string][]string{}
	d.changed = true // own stage-1 record is news
}

// n is the process count: the complete graph's neighborhood plus self.
func (d *device) n() int { return len(d.neighbors) + 1 }

func (d *device) Step(round int, inbox sim.Inbox) sim.Outbox {
	// Merge incoming knowledge. Senders are visited in sorted order so
	// the arrival bookkeeping never observes map iteration order.
	var newIDs []string
	for _, from := range sortedKeys(inbox) {
		for _, rec := range strings.Split(string(inbox[from]), ";") {
			id, fresh := d.merge(rec)
			if fresh {
				newIDs = append(newIDs, id)
			}
		}
	}
	// Fix predecessors once L-1 foreign stage-1 records have arrived;
	// ties within this round's batch break by id.
	if !d.fixed {
		sort.Strings(newIDs)
		d.arrived = append(d.arrived, newIDs...)
		if need := d.n() - d.t - 1; len(d.arrived) >= need {
			d.fixed = true
			d.preds = append([]string(nil), d.arrived[:need]...)
			sort.Strings(d.preds)
			d.s2[d.self] = d.preds
			d.changed = true
		}
	}
	if !d.decided {
		d.tryDecide()
	}
	if !d.changed {
		return nil
	}
	d.changed = false
	msg := sim.Payload(d.encodeKnowledge())
	out := make(sim.Outbox, len(d.neighbors))
	for _, nb := range d.neighbors {
		out[nb] = msg
	}
	return out
}

// merge folds one encoded record into the knowledge sets, reporting the
// id of a freshly-learned foreign stage-1 record (for predecessor
// bookkeeping). Malformed records are ignored: live processes only emit
// well-formed ones, and dead processes emit nothing.
func (d *device) merge(rec string) (id string, freshS1 bool) {
	kind, rest, ok := strings.Cut(rec, "|")
	if !ok {
		return "", false
	}
	id, body, ok := strings.Cut(rest, "|")
	if !ok || id == "" {
		return "", false
	}
	switch kind {
	case "1":
		if _, known := d.s1[id]; !known {
			d.s1[id] = body
			d.changed = true
			if id != d.self {
				return id, true
			}
		}
	case "2":
		if _, known := d.s2[id]; !known {
			var preds []string
			if body != "" {
				preds = strings.Split(body, ",")
			}
			d.s2[id] = preds
			d.changed = true
		}
	}
	return "", false
}

// tryDecide runs the decision rule over current knowledge.
func (d *device) tryDecide() {
	// K: ids whose predecessor list AND input are both known. (Knowledge
	// floods cumulatively, so a known stage-2 record implies the
	// sender's chain carried the stage-1 record too; the guard makes
	// that an invariant rather than an assumption.)
	k := make(map[string][]string, len(d.s2))
	for id, preds := range d.s2 {
		if _, ok := d.s1[id]; ok {
			k[id] = preds
		}
	}
	// Largest predecessor-closed subset: iteratively drop any member
	// with an unknown or excluded predecessor. (The largest closed
	// subset is unique — closure is preserved under union — so removal
	// order cannot affect the result; sorted passes keep the loop
	// visibly deterministic anyway.)
	for {
		removed := false
		for _, id := range sortedKeysOf(k) {
			for _, p := range k[id] {
				if _, in := k[p]; !in {
					delete(k, id)
					removed = true
					break
				}
			}
		}
		if !removed {
			break
		}
	}
	if len(k) == 0 {
		return
	}
	clique := sourceSCC(k)
	// Majority input among clique members; ties go to the smallest
	// member's input. Members are live by construction (only live
	// processes broadcast stage-1 records), so validity is automatic.
	counts := map[string]int{}
	for _, id := range clique {
		counts[unquote(d.s1[id])]++
	}
	best, bestCount := "", -1
	tie := false
	for _, v := range sortedKeysOf(counts) {
		switch {
		case counts[v] > bestCount:
			best, bestCount, tie = v, counts[v], false
		case counts[v] == bestCount:
			tie = true
		}
	}
	if tie {
		best = unquote(d.s1[clique[0]]) // clique is sorted; [0] is smallest id
	}
	d.decided = true
	d.decision = best
}

// sourceSCC computes the strongly connected components of the closed
// predecessor graph k (edges p -> x for p in k[x]) and returns the
// sorted member list of the source component containing the smallest
// id. For n > 2t there is exactly one source component, so the
// tie-break never fires on the possibility side.
func sourceSCC(k map[string][]string) []string {
	ids := make([]string, 0, len(k))
	for id := range k {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	idx := make(map[string]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	// Successor adjacency (p -> x), deterministic order.
	succ := make([][]int, len(ids))
	for i, id := range ids {
		for _, p := range k[id] {
			succ[idx[p]] = append(succ[idx[p]], i)
		}
	}
	comp := tarjan(len(ids), succ)
	// A component is a source when no edge from another component
	// enters it.
	nComp := 0
	for _, c := range comp {
		if c+1 > nComp {
			nComp = c + 1
		}
	}
	isSource := make([]bool, nComp)
	for i := range isSource {
		isSource[i] = true
	}
	for p := range succ {
		for _, x := range succ[p] {
			if comp[p] != comp[x] {
				isSource[comp[x]] = false
			}
		}
	}
	// Pick the source component containing the smallest id; ids is
	// sorted, so the first id in a source component wins.
	for i := range ids {
		if isSource[comp[i]] {
			members := []string{}
			for j, jd := range ids {
				if comp[j] == comp[i] {
					members = append(members, jd)
				}
			}
			return members
		}
	}
	return nil // unreachable: a finite nonempty DAG of SCCs has a source
}

// tarjan assigns SCC indices over the successor adjacency, iteratively
// (no recursion: schedules can chain many processes).
func tarjan(n int, succ [][]int) []int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack, callV, callI []int
	next, nComp := 0, 0
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		callV = append(callV[:0], root)
		callI = append(callI[:0], 0)
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(callV) > 0 {
			v := callV[len(callV)-1]
			i := callI[len(callI)-1]
			if i < len(succ[v]) {
				callI[len(callI)-1]++
				w := succ[v][i]
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callV = append(callV, w)
					callI = append(callI, 0)
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			callV = callV[:len(callV)-1]
			callI = callI[:len(callI)-1]
			if len(callV) > 0 {
				parent := callV[len(callV)-1]
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}
	return comp
}

// encodeKnowledge renders the cumulative knowledge canonically: records
// sorted, so equal knowledge states emit equal payloads (and intern to
// one string in recorded runs).
func (d *device) encodeKnowledge() string {
	recs := make([]string, 0, len(d.s1)+len(d.s2))
	for _, id := range sortedKeysOf(d.s1) {
		recs = append(recs, "1|"+id+"|"+d.s1[id])
	}
	for _, id := range sortedKeysOf(d.s2) {
		recs = append(recs, "2|"+id+"|"+strings.Join(d.s2[id], ","))
	}
	sort.Strings(recs)
	return strings.Join(recs, ";")
}

func (d *device) Snapshot() string {
	status := "listening"
	if d.preds != nil {
		status = "preds[" + strings.Join(d.preds, ",") + "]"
	}
	if d.decided {
		status += " decided=" + strconv.Quote(d.decision)
	}
	return status + " know{" + d.encodeKnowledge() + "}"
}

func (d *device) Output() (sim.Decision, bool) {
	if !d.decided {
		return sim.Decision{}, false
	}
	return sim.Decision{Value: d.decision}, true
}

func unquote(q string) string {
	s, err := strconv.Unquote(q)
	if err != nil {
		return q
	}
	return s
}

func sortedKeys(m sim.Inbox) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedKeysOf[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
