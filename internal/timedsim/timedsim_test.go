package timedsim

import (
	"fmt"
	"math/big"
	"testing"
	"testing/quick"

	"flm/internal/clockfn"
	"flm/internal/graph"
)

// beacon broadcasts its tick index at every tick and remembers everything
// it has heard, making behaviors easy to compare.
type beacon struct {
	self  string
	nbs   []string
	heard []string
}

var _ Device = (*beacon)(nil)

func (b *beacon) Init(self string, neighbors []string) {
	b.self = self
	b.nbs = append([]string(nil), neighbors...)
	b.heard = nil
}

func (b *beacon) Tick(k int, hw *big.Rat, inbox []Message) []Send {
	for _, m := range inbox {
		b.heard = append(b.heard, m.From+":"+m.Payload)
	}
	out := make([]Send, 0, len(b.nbs))
	for _, nb := range b.nbs {
		out = append(out, Send{To: nb, Payload: fmt.Sprintf("t%d", k)})
	}
	return out
}

func (b *beacon) Logical(hw *big.Rat) float64 {
	f, _ := hw.Float64()
	return f
}

func (b *beacon) Snapshot() string { return fmt.Sprint(b.heard) }

func rat(n, d int64) *big.Rat { return big.NewRat(n, d) }

func lineSystem(clockA, clockB clockfn.RatLinear) *System {
	g := graph.Line(2)
	return &System{
		G: g,
		Nodes: []Node{
			{Device: &beacon{}, Clock: clockA},
			{Device: &beacon{}, Clock: clockB},
		},
		Delta: rat(1, 1),
	}
}

func TestExecuteTickSchedule(t *testing.T) {
	sys := lineSystem(clockfn.RatIdentity(), clockfn.NewRatLinear(2, 1, 0, 1))
	run, err := Execute(sys, rat(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 (rate 1) ticks at 0,1,2,3,4; node 1 (rate 2) at 0,0.5,...,4.
	if got := len(run.Ticks[0]); got != 5 {
		t.Errorf("node l0 ticked %d times, want 5", got)
	}
	if got := len(run.Ticks[1]); got != 9 {
		t.Errorf("node l1 ticked %d times, want 9", got)
	}
	// Hardware readings are k*Delta.
	for u := range run.Ticks {
		for j, tick := range run.Ticks[u] {
			want := new(big.Rat).SetInt64(int64(j))
			if tick.HW.Cmp(want) != 0 {
				t.Errorf("node %d tick %d hw = %s", u, j, tick.HW.RatString())
			}
		}
	}
}

func TestStrictDeliveryRule(t *testing.T) {
	// Both nodes tick at integer times: a message sent at time k is
	// consumable only at the tick at k+1 (strictly later).
	sys := lineSystem(clockfn.RatIdentity(), clockfn.RatIdentity())
	run, err := Execute(sys, rat(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	// At tick 1 each node sees exactly the peer's tick-0 message.
	if run.Ticks[0][1].Snapshot != "[l1:t0]" {
		t.Errorf("tick-1 snapshot = %s", run.Ticks[0][1].Snapshot)
	}
	// At tick 0 nothing is consumable.
	if run.Ticks[0][0].Snapshot != "[]" {
		t.Errorf("tick-0 snapshot = %s", run.Ticks[0][0].Snapshot)
	}
}

func TestNegativeStartForOffsetClock(t *testing.T) {
	// Clock q = t + 2 reads 0 at real time -2: the device's first tick
	// happens before real time zero.
	sys := lineSystem(clockfn.NewRatLinear(1, 1, 2, 1), clockfn.RatIdentity())
	run, err := Execute(sys, rat(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if run.Ticks[0][0].Time.Cmp(rat(-2, 1)) != 0 {
		t.Errorf("first tick at %s, want -2", run.Ticks[0][0].Time.RatString())
	}
}

// TestScalingAxiom is the heart of the timed model: scaling every clock
// by an affine h changes event real times by h⁻¹ but no observable state.
func TestScalingAxiom(t *testing.T) {
	for _, h := range []clockfn.RatLinear{
		clockfn.NewRatLinear(3, 2, 0, 1), // rate scaling
		clockfn.NewRatLinear(1, 1, 5, 1), // offset scaling
		clockfn.NewRatLinear(2, 3, 1, 4), // both
	} {
		base := lineSystem(clockfn.NewRatLinear(1, 1, 0, 1), clockfn.NewRatLinear(3, 2, 1, 2))
		until := rat(6, 1)
		runA, err := Execute(base, until)
		if err != nil {
			t.Fatal(err)
		}
		scaled := lineSystem(
			base.Nodes[0].Clock.ComposeRat(h),
			base.Nodes[1].Clock.ComposeRat(h),
		)
		runB, err := Execute(scaled, h.InverseRat().At(until))
		if err != nil {
			t.Fatal(err)
		}
		hInv := h.InverseRat()
		for u := range runA.Ticks {
			if len(runA.Ticks[u]) != len(runB.Ticks[u]) {
				t.Fatalf("h=%s: node %d tick counts %d vs %d", h, u, len(runA.Ticks[u]), len(runB.Ticks[u]))
			}
			for j := range runA.Ticks[u] {
				a, b := runA.Ticks[u][j], runB.Ticks[u][j]
				if want := hInv.At(a.Time); want.Cmp(b.Time) != 0 {
					t.Errorf("h=%s: node %d tick %d time %s, want %s", h, u, j, b.Time.RatString(), want.RatString())
				}
				if a.Snapshot != b.Snapshot {
					t.Errorf("h=%s: node %d tick %d snapshots differ", h, u, j)
				}
				if a.HW.Cmp(b.HW) != 0 {
					t.Errorf("h=%s: node %d tick %d hw differ", h, u, j)
				}
			}
		}
	}
}

// Property: the Scaling axiom holds for random rational affine h (any
// positive rate, any offset).
func TestScalingAxiomProperty(t *testing.T) {
	prop := func(rateNum, rateDen, offNum uint8) bool {
		rn := int64(rateNum%7) + 1
		rd := int64(rateDen%5) + 1
		on := int64(offNum%11) - 5
		h := clockfn.NewRatLinear(rn, rd, on, 2)
		base := lineSystem(clockfn.NewRatLinear(1, 1, 0, 1), clockfn.NewRatLinear(5, 3, 1, 3))
		until := rat(5, 1)
		runA, err := Execute(base, until)
		if err != nil {
			return false
		}
		scaled := lineSystem(
			base.Nodes[0].Clock.ComposeRat(h),
			base.Nodes[1].Clock.ComposeRat(h),
		)
		runB, err := Execute(scaled, h.InverseRat().At(until))
		if err != nil {
			return false
		}
		for u := range runA.Ticks {
			if len(runA.Ticks[u]) != len(runB.Ticks[u]) {
				return false
			}
			for j := range runA.Ticks[u] {
				if runA.Ticks[u][j].Snapshot != runB.Ticks[u][j].Snapshot {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestScalingAxiomBrokenByRealDelay is the paper's ablation: a fixed
// real-time transmission delay does NOT scale with the hardware clocks,
// so the scaled run is observably different — the Scaling axiom fails,
// and with it the whole Theorem 8 machinery (as FLM85 notes, "if this
// axiom is significantly weakened, as by bounding the transmission
// delay, clock synchronization may be possible in inadequate graphs").
func TestScalingAxiomBrokenByRealDelay(t *testing.T) {
	h := clockfn.NewRatLinear(3, 1, 0, 1) // speed everything up 3x
	mk := func(scale bool) *Run {
		sys := lineSystem(clockfn.RatIdentity(), clockfn.NewRatLinear(1, 1, 0, 1))
		sys.RealDelay = rat(3, 4) // fixed real-time delay
		until := rat(6, 1)
		if scale {
			sys.Nodes[0].Clock = sys.Nodes[0].Clock.ComposeRat(h)
			sys.Nodes[1].Clock = sys.Nodes[1].Clock.ComposeRat(h)
			until = h.InverseRat().At(until)
		}
		run, err := Execute(sys, until)
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	runA, runB := mk(false), mk(true)
	same := true
	for u := range runA.Ticks {
		if len(runA.Ticks[u]) != len(runB.Ticks[u]) {
			same = false
			break
		}
		for j := range runA.Ticks[u] {
			if runA.Ticks[u][j].Snapshot != runB.Ticks[u][j].Snapshot {
				same = false
			}
		}
	}
	if same {
		t.Fatal("scaled run identical despite a real-time delay; the ablation should break the Scaling axiom")
	}
}

// TestRealDelayDefersConsumption pins the delay semantics directly.
func TestRealDelayDefersConsumption(t *testing.T) {
	sys := lineSystem(clockfn.RatIdentity(), clockfn.RatIdentity())
	sys.RealDelay = rat(3, 2) // messages take 1.5 time units
	run, err := Execute(sys, rat(4, 1))
	if err != nil {
		t.Fatal(err)
	}
	// A message sent at time 0 is due at 1.5, consumable at the tick at
	// time 2 (not 1).
	if got := run.Ticks[0][1].Snapshot; got != "[]" {
		t.Errorf("tick-1 snapshot = %s, want empty (message still in flight)", got)
	}
	if got := run.Ticks[0][2].Snapshot; got != "[l1:t0]" {
		t.Errorf("tick-2 snapshot = %s, want [l1:t0]", got)
	}
}

// TestFaultAxiomTimed: replaying a node's recorded sends as a script
// leaves its neighbor's behavior identical.
func TestFaultAxiomTimed(t *testing.T) {
	sys := lineSystem(clockfn.RatIdentity(), clockfn.NewRatLinear(2, 1, 0, 1))
	until := rat(5, 1)
	runA, err := Execute(sys, until)
	if err != nil {
		t.Fatal(err)
	}
	var script []ScriptedSend
	for _, rec := range runA.Sends[graph.Edge{From: "l0", To: "l1"}] {
		script = append(script, ScriptedSend{At: rec.At, To: "l1", Payload: rec.Payload})
	}
	replaySys := &System{
		G: graph.Line(2),
		Nodes: []Node{
			{Script: script, Clock: clockfn.RatIdentity()},
			{Device: &beacon{}, Clock: clockfn.NewRatLinear(2, 1, 0, 1)},
		},
		Delta: rat(1, 1),
	}
	runB, err := Execute(replaySys, until)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := runA.Ticks[1], runB.Ticks[1]
	if len(ta) != len(tb) {
		t.Fatalf("tick counts differ: %d vs %d", len(ta), len(tb))
	}
	for j := range ta {
		if ta[j].Snapshot != tb[j].Snapshot {
			t.Errorf("tick %d: %q vs %q", j, ta[j].Snapshot, tb[j].Snapshot)
		}
	}
}

func TestExecuteValidation(t *testing.T) {
	g := graph.Line(2)
	if _, err := Execute(&System{G: g, Nodes: []Node{{}}, Delta: rat(1, 1)}, rat(1, 1)); err == nil {
		t.Error("node count mismatch accepted")
	}
	nodes := []Node{
		{Device: &beacon{}, Clock: clockfn.RatIdentity()},
		{Device: &beacon{}, Clock: clockfn.RatIdentity()},
	}
	if _, err := Execute(&System{G: g, Nodes: nodes, Delta: rat(0, 1)}, rat(1, 1)); err == nil {
		t.Error("zero delta accepted")
	}
	if _, err := Execute(&System{G: g, Nodes: []Node{
		{Device: &beacon{}, Clock: clockfn.RatLinear{}},
		{Device: &beacon{}, Clock: clockfn.RatIdentity()},
	}, Delta: rat(1, 1)}, rat(1, 1)); err == nil {
		t.Error("missing clock accepted")
	}
	// Unsorted script.
	if _, err := Execute(&System{G: g, Nodes: []Node{
		{Script: []ScriptedSend{{At: rat(2, 1), To: "l1", Payload: "x"}, {At: rat(1, 1), To: "l1", Payload: "y"}}, Clock: clockfn.RatIdentity()},
		{Device: &beacon{}, Clock: clockfn.RatIdentity()},
	}, Delta: rat(1, 1)}, rat(3, 1)); err == nil {
		t.Error("unsorted script accepted")
	}
	// Script to non-neighbor.
	g3 := graph.Line(3)
	if _, err := Execute(&System{G: g3, Nodes: []Node{
		{Script: []ScriptedSend{{At: rat(1, 1), To: "l2", Payload: "x"}}, Clock: clockfn.RatIdentity()},
		{Device: &beacon{}, Clock: clockfn.RatIdentity()},
		{Device: &beacon{}, Clock: clockfn.RatIdentity()},
	}, Delta: rat(1, 1)}, rat(2, 1)); err == nil {
		t.Error("script to non-neighbor accepted")
	}
}

func TestRunAccessors(t *testing.T) {
	sys := lineSystem(clockfn.RatIdentity(), clockfn.RatIdentity())
	run, err := Execute(sys, rat(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run.TicksOf("nope"); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := run.LogicalOf("nope"); err == nil {
		t.Error("unknown node accepted")
	}
	v, err := run.LogicalOf("l0")
	if err != nil || v != 2 {
		t.Errorf("LogicalOf(l0) = %v, %v (beacon logical = hw = until)", v, err)
	}
}

func TestRenamedDeviceTranslates(t *testing.T) {
	inner := &beacon{}
	inner.Init("g", []string{"gn"})
	d := Renamed(inner, map[string]string{"sn": "gn"}, map[string]string{"gn": "sn"})
	sends := d.Tick(0, rat(0, 1), []Message{{From: "sn", Payload: "x", SentAt: rat(0, 1)}})
	if len(sends) != 1 || sends[0].To != "sn" {
		t.Errorf("sends = %v, want translated to sn", sends)
	}
	if inner.Snapshot() != "[gn:x]" {
		t.Errorf("inner heard %s, want [gn:x]", inner.Snapshot())
	}
}
