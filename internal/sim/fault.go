// Fault isolation for the executor. The paper's Fault axiom lets a faulty
// node behave arbitrarily, and this repository invites callers to plug
// arbitrary Device implementations into Execute — including ones that
// panic. This file converts those panics into structured, attributable
// errors instead of letting them kill the process, and gives the
// executor's own rule violations a typed shape so callers (and the sweep
// engine's recovery layer) can distinguish a buggy device from a buggy
// engine invocation.
package sim

import (
	"context"
	"fmt"
	"runtime/debug"
)

// Operation names recorded in a DeviceFault, identifying which device
// entry point panicked.
const (
	OpBuild    = "build"    // the Builder call (includes the device's Init)
	OpStep     = "step"     // Device.Step
	OpSnapshot = "snapshot" // Device.Snapshot
	OpOutput   = "output"   // Device.Output
)

// DeviceFault is a panic raised by a user-supplied device, caught at the
// executor boundary and converted into an error. It carries everything
// needed to attribute the fault: the node the device was installed at,
// the round being executed (-1 for construction-time faults), the device
// entry point that panicked, the recovered panic value, and the stack at
// the recovery point.
type DeviceFault struct {
	Node  string
	Round int    // -1 when the fault happened before round 0 (build/init)
	Op    string // one of OpBuild, OpStep, OpSnapshot, OpOutput
	Value any    // the recovered panic value
	Stack []byte // debug.Stack() captured inside the recover
}

func (f *DeviceFault) Error() string {
	if f.Round < 0 {
		return fmt.Sprintf("sim: device at node %s panicked in %s: %v", f.Node, f.Op, f.Value)
	}
	return fmt.Sprintf("sim: device at node %s panicked in %s (round %d): %v",
		f.Node, f.Op, f.Round, f.Value)
}

// ExecError is a typed execution failure detected by the executor itself:
// a protocol-rule violation (send to a non-neighbor, a changed decision),
// a device fault, or a cancelled context. Node and Round locate the
// failure; both are best-effort ("" / -1 when the failure is not
// attributable to a single node, e.g. cancellation between rounds).
//
// MustExecute panics with an *ExecError, so recovery layers can
// distinguish engine-reported failures (errors.As yields *ExecError)
// from arbitrary device panics (errors.As yields *DeviceFault via
// Unwrap, or no typed error at all).
type ExecError struct {
	Node  string
	Round int
	Err   error
}

func (e *ExecError) Error() string {
	if e.Err == nil {
		return "sim: execution failed"
	}
	return e.Err.Error()
}

func (e *ExecError) Unwrap() error { return e.Err }

// execRuleError builds the typed form of an executor rule violation while
// keeping the historical message text.
func execRuleError(node string, round int, format string, args ...any) *ExecError {
	return &ExecError{Node: node, Round: round, Err: fmt.Errorf(format, args...)}
}

// safeBuild runs a Builder under recover, attributing a panic to the node
// the device was being constructed for.
func safeBuild(b Builder, self string, neighbors []string, input Input) (d Device, fault *DeviceFault) {
	defer func() {
		if r := recover(); r != nil {
			fault = &DeviceFault{Node: self, Round: -1, Op: OpBuild, Value: r, Stack: debug.Stack()}
		}
	}()
	return b(self, neighbors, input), nil
}

// safeStep runs Device.Step under recover. A panicking device sends
// nothing in the failing round.
func safeStep(d Device, node string, round int, inbox Inbox) (out Outbox, fault *DeviceFault) {
	defer func() {
		if r := recover(); r != nil {
			out, fault = nil, &DeviceFault{Node: node, Round: round, Op: OpStep, Value: r, Stack: debug.Stack()}
		}
	}()
	return d.Step(round, inbox), nil
}

// safeSnapshot runs Device.Snapshot under recover, substituting a marker
// snapshot so the partial run stays diagnosable.
func safeSnapshot(d Device, node string, round int) (snap string, fault *DeviceFault) {
	defer func() {
		if r := recover(); r != nil {
			snap = "<panic>"
			fault = &DeviceFault{Node: node, Round: round, Op: OpSnapshot, Value: r, Stack: debug.Stack()}
		}
	}()
	return d.Snapshot(), nil
}

// safeOutput runs Device.Output under recover.
func safeOutput(d Device, node string, round int) (dec Decision, ok bool, fault *DeviceFault) {
	defer func() {
		if r := recover(); r != nil {
			dec, ok = Decision{}, false
			fault = &DeviceFault{Node: node, Round: round, Op: OpOutput, Value: r, Stack: debug.Stack()}
		}
	}()
	d2, ok2 := d.Output()
	return d2, ok2, nil
}

// cancelCheck returns the typed cancellation error for a context that is
// done, or nil. The background context short-circuits without an
// interface call on the hot path.
func cancelCheck(ctx context.Context, round int) *ExecError {
	if ctx == context.Background() {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &ExecError{Round: round, Err: fmt.Errorf("sim: execution cancelled before round %d: %w", round, err)}
	}
	return nil
}
