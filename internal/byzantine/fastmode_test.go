package byzantine

import (
	"fmt"
	"testing"

	"flm/internal/adversary"
	"flm/internal/graph"
	"flm/internal/sim"
)

// TestFastModeDecisionsMatchFullRecording pins the ExecuteOpts fast path
// to the full-recording executor on the three real agreement protocols,
// under a fault: recording must never change what anyone decides.
func TestFastModeDecisionsMatchFullRecording(t *testing.T) {
	cases := []struct {
		name   string
		n, f   int
		honest func(g *graph.Graph, f int) sim.Builder
		rounds func(f int) int
	}{
		{"eig", 4, 1, func(g *graph.Graph, f int) sim.Builder { return NewEIG(f, g.Names()) }, EIGRounds},
		{"phase-king", 5, 1, func(g *graph.Graph, f int) sim.Builder { return NewPhaseKing(f, g.Names()) }, PhaseKingRounds},
		{"turpin-coan", 4, 1, func(g *graph.Graph, f int) sim.Builder { return NewTurpinCoan(f, g.Names()) }, TurpinCoanRounds},
	}
	for _, c := range cases {
		for _, strat := range adversary.Panel(23) {
			t.Run(fmt.Sprintf("%s/%s", c.name, strat.Name), func(t *testing.T) {
				g := graph.Complete(c.n)
				honest := c.honest(g, c.f)
				inputs := map[string]sim.Input{}
				for i, name := range g.Names() {
					inputs[name] = sim.BoolInput(i%2 == 0)
				}
				trial := Trial{
					G: g, Inputs: inputs, Honest: honest,
					Faulty: map[string]sim.Builder{g.Name(c.n - 1): strat.Corrupt(honest)},
					Rounds: c.rounds(c.f),
				}
				fullRun, correct, fullRep, err := trial.RunWith(sim.FullRecording)
				if err != nil {
					t.Fatal(err)
				}
				fastRun, _, fastRep, err := trial.RunWith(sim.ExecuteOpts{})
				if err != nil {
					t.Fatal(err)
				}
				for _, name := range correct {
					df, err1 := fullRun.DecisionOf(name)
					dq, err2 := fastRun.DecisionOf(name)
					if err1 != nil || err2 != nil {
						t.Fatal(err1, err2)
					}
					if df != dq {
						t.Errorf("node %s: full %+v vs fast %+v", name, df, dq)
					}
				}
				if fullRep.OK() != fastRep.OK() {
					t.Errorf("reports disagree: full OK=%v fast OK=%v", fullRep.OK(), fastRep.OK())
				}
			})
		}
	}
}
