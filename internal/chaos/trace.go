package chaos

import "flm/internal/obs"

// Observability for the chaos harness. All counters tick only while a
// tracer is installed, so an untraced chaos run executes the exact
// pre-instrumentation path. Per-trial "chaos.trial" events carry the
// attack schedule and classification; "chaos.shrink" spans record how
// many candidate re-executions the minimizer spent per counterexample.
var (
	mTrials       = obs.NewCounter("chaos.trials")
	mGreen        = obs.NewCounter("chaos.green")
	mViolations   = obs.NewCounter("chaos.violations")
	mEngineFaults = obs.NewCounter("chaos.engine_faults")
	mShrinkEvals  = obs.NewCounter("chaos.shrink.evals")
)
