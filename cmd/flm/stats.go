package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// The stats subcommand replays a -trace JSONL file into per-subsystem
// summaries: where the time went (per-span-name totals and the slowest
// individual spans), how the memoization caches served the run, how busy
// each sweep worker was, the shape of the contradiction chains, and the
// chaos harness's trial outcomes. It is the intended consumer of the
// tracer's output — a trace is append-only JSON lines precisely so this
// command (and ad-hoc jq) can fold it after the fact.

// traceRec decodes any line of a trace file; T discriminates.
type traceRec struct {
	T        string              `json:"t"`
	ID       uint64              `json:"id"`
	Par      uint64              `json:"par"`
	Name     string              `json:"name"`
	StartUS  int64               `json:"start_us"`
	DurUS    int64               `json:"dur_us"`
	AtUS     int64               `json:"at_us"`
	Attrs    map[string]any      `json:"attrs"`
	Counters map[string]uint64   `json:"counters"`
	Gauges   map[string]int64    `json:"gauges"`
	Hists    map[string]histSnap `json:"hists"`
}

type histSnap struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Max   uint64 `json:"max"`
}

// attrStr reads a string attribute ("" when absent or not a string).
func (r *traceRec) attrStr(key string) string {
	s, _ := r.Attrs[key].(string)
	return s
}

// attrInt reads a numeric attribute (JSON numbers decode as float64).
func (r *traceRec) attrInt(key string) (int64, bool) {
	f, ok := r.Attrs[key].(float64)
	return int64(f), ok
}

// usDur renders a microsecond count as a human duration.
func usDur(us int64) string {
	return (time.Duration(us) * time.Microsecond).String()
}

func cmdStats(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	minDiskRate := fs.Float64("mindiskrate", -1, "gate: exit nonzero unless at least this percent of the run cache's L1 misses were served from the disk tier (the CI cache-warm assertion); negative disables")
	diff := fs.Bool("diff", false, "compare two traces (old.jsonl new.jsonl) and exit 3 when behavior drifted beyond -threshold")
	threshold := fs.Float64("threshold", 5, "diff gate: tolerated drift in percent (counters, span counts, traffic) and percentage points (span time shares, cache rates)")
	noTiming := fs.Bool("notiming", false, "diff: skip the wall-time-share family (for comparing traces from different machines)")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *diff {
		if fs.NArg() != 2 {
			fmt.Fprintln(out, "stats: usage: flm stats -diff [-threshold pct] [-notiming] <old.jsonl> <new.jsonl>")
			return 2
		}
		return cmdStatsDiff(fs.Arg(0), fs.Arg(1), *threshold, *noTiming, out)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(out, "stats: usage: flm stats [-mindiskrate pct] <trace.jsonl>  (produced by -trace on run/all/prove/chaos/bench), or flm stats -diff <old.jsonl> <new.jsonl>")
		return 2
	}
	path := fs.Arg(0)
	summary, err := foldTraceFile(path)
	if err != nil {
		fmt.Fprintf(out, "stats: %v\n", err)
		return 1
	}
	summary.render(out, path)
	if *minDiskRate >= 0 {
		rate := summary.diskRate()
		fmt.Fprintf(out, "\ndisk tier served %.1f%% of run-cache L1 misses (gate: >= %.1f%%)\n", rate, *minDiskRate)
		if rate < *minDiskRate {
			fmt.Fprintln(out, "stats: disk hit-rate below the -mindiskrate gate")
			return 3
		}
	}
	return 0
}

// spanAgg accumulates all spans sharing a name.
type spanAgg struct {
	name    string
	count   int
	totalUS int64
	maxUS   int64
}

// slowSpan is one entry of the slowest-spans leaderboard.
type slowSpan struct {
	rec traceRec
}

// workerAgg accumulates one worker index across every traced sweep.
type workerAgg struct {
	worker int64
	spans  int
	trials int64
	faults int64
	busyUS int64
	idleUS int64
}

// chainAgg accumulates one theorem's chain links. A link at depth 1
// starts a new chain (theorem drivers build one chain per device
// variant); first keeps the first full chain as the shape exemplar.
type chainAgg struct {
	theorem  string
	links    int
	chains   int
	first    []string
	maxDepth int64
}

// expAgg is one flm.experiment span, kept in trace order.
type expAgg struct{ rec traceRec }

// traceSummary is the folded state of a whole trace file.
type traceSummary struct {
	spans, events int
	wallUS        int64
	byName        map[string]*spanAgg
	slowest       []slowSpan
	execCache     map[string]int // sim.execute spans by cache attr
	spliceCache   map[string]int // core.splice spans by cache attr
	workers       map[int64]*workerAgg
	sweeps        int
	chains        map[string]*chainAgg
	chainOrder    []string
	chaosOutcome  map[string]int
	chaosTrials   int
	shrinkEvals   int64
	experiments   []expAgg
	metrics       *traceRec
	msgTotal      int64 // sum of sim.execute "messages" attrs (full recordings)
	byteTotal     int64 // sum of sim.execute "bytes" attrs
}

const slowestKept = 5

// foldTraceFile opens and folds one trace file.
func foldTraceFile(path string) (*traceSummary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := foldTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// foldTrace folds every line of a trace into a summary; any unparsable
// line is an error (a valid trace is valid JSON per line, always).
func foldTrace(r io.Reader) (*traceSummary, error) {
	s := &traceSummary{
		byName:       map[string]*spanAgg{},
		execCache:    map[string]int{},
		spliceCache:  map[string]int{},
		workers:      map[int64]*workerAgg{},
		chains:       map[string]*chainAgg{},
		chaosOutcome: map[string]int{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // schedules/errors can make long lines
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec traceRec
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		switch rec.T {
		case "span":
			s.addSpan(rec)
		case "event":
			s.addEvent(rec)
		case "metrics":
			m := rec
			s.metrics = &m
			if m.AtUS > s.wallUS {
				s.wallUS = m.AtUS
			}
		default:
			return nil, fmt.Errorf("line %d: unknown record type %q", lineNo, rec.T)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if s.spans == 0 && s.events == 0 {
		return nil, fmt.Errorf("no trace records (was the producer run with -trace?)")
	}
	return s, nil
}

func (s *traceSummary) addSpan(rec traceRec) {
	s.spans++
	if end := rec.StartUS + rec.DurUS; end > s.wallUS {
		s.wallUS = end
	}
	agg := s.byName[rec.Name]
	if agg == nil {
		agg = &spanAgg{name: rec.Name}
		s.byName[rec.Name] = agg
	}
	agg.count++
	agg.totalUS += rec.DurUS
	if rec.DurUS > agg.maxUS {
		agg.maxUS = rec.DurUS
	}
	s.noteSlow(rec)

	switch rec.Name {
	case "sim.execute":
		if st := rec.attrStr("cache"); st != "" {
			s.execCache[st]++
		}
		if v, ok := rec.attrInt("messages"); ok {
			s.msgTotal += v
		}
		if v, ok := rec.attrInt("bytes"); ok {
			s.byteTotal += v
		}
	case "core.splice":
		if st := rec.attrStr("cache"); st != "" {
			s.spliceCache[st]++
		}
	case "sweep.map", "sweep.isolated":
		s.sweeps++
	case "sweep.worker":
		w, _ := rec.attrInt("worker")
		wa := s.workers[w]
		if wa == nil {
			wa = &workerAgg{worker: w}
			s.workers[w] = wa
		}
		wa.spans++
		if v, ok := rec.attrInt("trials"); ok {
			wa.trials += v
		}
		if v, ok := rec.attrInt("faults"); ok {
			wa.faults += v
		}
		if v, ok := rec.attrInt("busy_us"); ok {
			wa.busyUS += v
		}
		if v, ok := rec.attrInt("idle_us"); ok {
			wa.idleUS += v
		}
	case "core.chain.link":
		th := rec.attrStr("theorem")
		ch := s.chains[th]
		if ch == nil {
			ch = &chainAgg{theorem: th}
			s.chains[th] = ch
			s.chainOrder = append(s.chainOrder, th)
		}
		ch.links++
		d, ok := rec.attrInt("depth")
		if ok && d > ch.maxDepth {
			ch.maxDepth = d
		}
		if ok && d == 1 {
			ch.chains++
		}
		if ch.chains <= 1 {
			ch.first = append(ch.first, rec.attrStr("link"))
		}
	case "chaos.shrink":
		if v, ok := rec.attrInt("evals"); ok {
			s.shrinkEvals += v
		}
	case "flm.experiment":
		s.experiments = append(s.experiments, expAgg{rec})
	}
}

func (s *traceSummary) addEvent(rec traceRec) {
	s.events++
	if rec.AtUS > s.wallUS {
		s.wallUS = rec.AtUS
	}
	if rec.Name == "chaos.trial" {
		s.chaosTrials++
		if o := rec.attrStr("outcome"); o != "" {
			s.chaosOutcome[o]++
		}
	}
}

// noteSlow keeps the slowestKept longest spans seen so far.
func (s *traceSummary) noteSlow(rec traceRec) {
	s.slowest = append(s.slowest, slowSpan{rec})
	sort.SliceStable(s.slowest, func(i, j int) bool {
		return s.slowest[i].rec.DurUS > s.slowest[j].rec.DurUS
	})
	if len(s.slowest) > slowestKept {
		s.slowest = s.slowest[:slowestKept]
	}
}

// cacheLine renders one cache's span-derived counters; served is the
// fraction answered without running (hits, single-flight waits, and
// disk-tier fills).
func cacheLine(w io.Writer, label string, counts map[string]int) {
	if len(counts) == 0 {
		fmt.Fprintf(w, "  %-12s no traffic in this trace\n", label)
		return
	}
	hit, wait, disk, miss := counts["hit"], counts["wait"], counts["disk"], counts["miss"]
	lookups := hit + wait + disk + miss
	rate := 0.0
	if lookups > 0 {
		rate = 100 * float64(hit+wait+disk) / float64(lookups)
	}
	fmt.Fprintf(w, "  %-12s hit %d  wait %d  disk %d  miss %d  bypass %d  uncacheable %d  — hit rate %.1f%%\n",
		label, hit, wait, disk, miss, counts["bypass"], counts["uncacheable"], rate)
}

// diskRate is the percentage of run-cache lookups that fell through L1
// and were then served by the disk tier: disk / (disk + miss). This is
// the cache-warm CI assertion's measure — a second cold process should
// fill its L1 misses from the blobs the first one wrote, so L1 hits
// (which say nothing about cross-process reuse) are excluded on both
// sides of the ratio.
func (s *traceSummary) diskRate() float64 {
	disk, miss := s.execCache["disk"], s.execCache["miss"]
	if disk+miss == 0 {
		return 0
	}
	return 100 * float64(disk) / float64(disk+miss)
}

func (s *traceSummary) render(out io.Writer, path string) {
	fmt.Fprintf(out, "trace %s: %d spans, %d events, wall %s\n",
		path, s.spans, s.events, usDur(s.wallUS))

	names := make([]string, 0, len(s.byName))
	for n := range s.byName {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return s.byName[names[i]].totalUS > s.byName[names[j]].totalUS
	})
	fmt.Fprintf(out, "\nspans by name (total time desc):\n")
	fmt.Fprintf(out, "  %-20s %8s %12s %12s %12s\n", "name", "count", "total", "mean", "max")
	for _, n := range names {
		a := s.byName[n]
		fmt.Fprintf(out, "  %-20s %8d %12s %12s %12s\n",
			a.name, a.count, usDur(a.totalUS), usDur(a.totalUS/int64(a.count)), usDur(a.maxUS))
	}

	fmt.Fprintf(out, "\nslowest spans:\n")
	for i, sl := range s.slowest {
		extra := ""
		if c := sl.rec.attrStr("cache"); c != "" {
			extra = "  cache=" + c
		}
		if id := sl.rec.attrStr("id"); id != "" {
			extra += "  id=" + id
		}
		fmt.Fprintf(out, "  %d. %-20s %12s  (span %d)%s\n", i+1, sl.rec.Name, usDur(sl.rec.DurUS), sl.rec.ID, extra)
	}

	fmt.Fprintf(out, "\nmemoization caches:\n")
	cacheLine(out, "run cache", s.execCache)
	cacheLine(out, "splice cache", s.spliceCache)

	fmt.Fprintf(out, "\nsweep workers:\n")
	if len(s.workers) == 0 {
		fmt.Fprintf(out, "  no sweep activity in this trace\n")
	} else {
		idxs := make([]int64, 0, len(s.workers))
		for w := range s.workers {
			idxs = append(idxs, w)
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
		fmt.Fprintf(out, "  %-8s %8s %8s %8s %12s %12s %12s\n",
			"worker", "sweeps", "trials", "faults", "busy", "idle", "utilization")
		for _, wi := range idxs {
			wa := s.workers[wi]
			util := 0.0
			if wall := wa.busyUS + wa.idleUS; wall > 0 {
				util = 100 * float64(wa.busyUS) / float64(wall)
			}
			fmt.Fprintf(out, "  %-8d %8d %8d %8d %12s %12s %11.1f%%\n",
				wa.worker, wa.spans, wa.trials, wa.faults, usDur(wa.busyUS), usDur(wa.idleUS), util)
		}
		fmt.Fprintf(out, "  (%d traced sweeps)\n", s.sweeps)
	}

	if len(s.chainOrder) > 0 {
		fmt.Fprintf(out, "\ncontradiction chains:\n")
		for _, th := range s.chainOrder {
			ch := s.chains[th]
			fmt.Fprintf(out, "  %-28s %d chain(s), %d links, depth %d: %s\n",
				ch.theorem, ch.chains, ch.links, ch.maxDepth, strings.Join(ch.first, " -> "))
		}
	}

	if s.chaosTrials > 0 {
		keys := make([]string, 0, len(s.chaosOutcome))
		for k := range s.chaosOutcome {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, len(keys))
		for i, k := range keys {
			parts[i] = fmt.Sprintf("%s=%d", k, s.chaosOutcome[k])
		}
		fmt.Fprintf(out, "\nchaos: %d trials: %s", s.chaosTrials, strings.Join(parts, " "))
		if s.shrinkEvals > 0 {
			fmt.Fprintf(out, "; shrink re-executions %d", s.shrinkEvals)
		}
		fmt.Fprintln(out)
	}

	if len(s.experiments) > 0 {
		fmt.Fprintf(out, "\nexperiments:\n")
		for _, e := range s.experiments {
			hits, _ := e.rec.attrInt("runcache_hits")
			misses, _ := e.rec.attrInt("runcache_misses")
			line := fmt.Sprintf("  %-4s %-44s %10s  runcache +%d hit / +%d miss",
				e.rec.attrStr("id"), e.rec.attrStr("name"), usDur(e.rec.DurUS), hits, misses)
			if disk, ok := e.rec.attrInt("runcache_disk_hits"); ok && disk > 0 {
				line += fmt.Sprintf(" / +%d disk", disk)
			}
			if ev, ok := e.rec.attrInt("runcache_evictions"); ok && ev > 0 {
				line += fmt.Sprintf(" / +%d evict", ev)
			}
			if errText := e.rec.attrStr("error"); errText != "" {
				line += "  ERROR: " + errText
			}
			fmt.Fprintln(out, line)
		}
	}

	if s.metrics != nil {
		fmt.Fprintf(out, "\nfinal metrics:\n")
		cnames := make([]string, 0, len(s.metrics.Counters))
		for n := range s.metrics.Counters {
			cnames = append(cnames, n)
		}
		sort.Strings(cnames)
		for _, n := range cnames {
			fmt.Fprintf(out, "  %-24s %d\n", n, s.metrics.Counters[n])
		}
		gnames := make([]string, 0, len(s.metrics.Gauges))
		for n := range s.metrics.Gauges {
			gnames = append(gnames, n)
		}
		sort.Strings(gnames)
		for _, n := range gnames {
			fmt.Fprintf(out, "  %-24s %d\n", n, s.metrics.Gauges[n])
		}
		hnames := make([]string, 0, len(s.metrics.Hists))
		for n := range s.metrics.Hists {
			hnames = append(hnames, n)
		}
		sort.Strings(hnames)
		for _, n := range hnames {
			h := s.metrics.Hists[n]
			mean := 0.0
			if h.Count > 0 {
				mean = float64(h.Sum) / float64(h.Count)
			}
			fmt.Fprintf(out, "  %-24s count=%d mean=%.1fµs max=%s\n", n, h.Count, mean, usDur(int64(h.Max)))
		}
	}
}
