package byzantine

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"flm/internal/sim"
)

// This file provides the panel of candidate agreement devices that the
// impossibility engine defeats on inadequate graphs. Each is a plausible
// deterministic strategy; Theorem 1 says none can work, and the engine
// exhibits the broken behavior chain for each.

// NewOwnInput returns a device that decides its own input at the given
// round, broadcasting nothing of consequence. It trivially satisfies
// validity and trivially violates agreement on mixed inputs — the engine
// catches it in the mixed scenario E2.
func NewOwnInput(decideRound int) sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		return &simpleDevice{
			self: self, nbs: sortedCopy(neighbors), input: boolOrDefault(string(input)),
			decideRound: decideRound, kind: "own",
			decide: func(d *simpleDevice) string { return d.input },
		}
	}
}

// NewConstant returns a device that always decides the given value. It
// satisfies agreement and violates validity in the unanimous run of the
// other value.
func NewConstant(value string, decideRound int) sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		return &simpleDevice{
			self: self, nbs: sortedCopy(neighbors), input: boolOrDefault(string(input)),
			decideRound: decideRound, kind: "const" + value,
			decide: func(d *simpleDevice) string { return value },
		}
	}
}

// NewMajority returns the natural voting device: broadcast the input,
// re-broadcast the latest view each round, and decide the majority of the
// final view (own value plus the last value heard from each neighbor;
// ties to DefaultValue). On the triangle with one Byzantine node this is
// the textbook victim of the hexagon argument.
func NewMajority(decideRound int) sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		d := &simpleDevice{
			self: self, nbs: sortedCopy(neighbors), input: boolOrDefault(string(input)),
			decideRound: decideRound, kind: "maj",
		}
		d.view = map[string]string{self: d.input}
		d.decide = func(d *simpleDevice) string { return majorityOfView(d.view) }
		return d
	}
}

// NewEcho returns a two-phase voting device: round 0 broadcast input;
// round 1 broadcast the full view ("echo"); decision is the majority over
// all first-hand and second-hand reports. A step smarter than NewMajority
// — and equally doomed on inadequate graphs.
func NewEcho(decideRound int) sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		d := &simpleDevice{
			self: self, nbs: sortedCopy(neighbors), input: boolOrDefault(string(input)),
			decideRound: decideRound, kind: "echo",
		}
		d.view = map[string]string{self: d.input}
		d.echoes = map[string]string{}
		d.decide = func(d *simpleDevice) string {
			all := map[string]string{}
			for k, v := range d.view {
				all[k] = v
			}
			for k, v := range d.echoes {
				all[k] = v
			}
			return majorityOfView(all)
		}
		return d
	}
}

// NewSeededMajority returns a majority device whose tie-break is a
// pseudo-random coin derived from the seed and the node name. Treating
// the seed as part of the device keeps the system deterministic, which is
// exactly how FLM85's Section 3 remark folds nondeterministic algorithms
// into the impossibility proofs: for every resolution of the coin flips
// the same covering argument applies.
func NewSeededMajority(seed int64, decideRound int) sim.Builder {
	return func(self string, neighbors []string, input sim.Input) sim.Device {
		h := fnv.New64a()
		h.Write([]byte(self))
		coin := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
		d := &simpleDevice{
			self: self, nbs: sortedCopy(neighbors), input: boolOrDefault(string(input)),
			decideRound: decideRound, kind: fmt.Sprintf("seededmaj%d", seed),
		}
		d.view = map[string]string{self: d.input}
		d.decide = func(d *simpleDevice) string {
			zero, one := 0, 0
			for _, v := range d.view {
				if v == "1" {
					one++
				} else {
					zero++
				}
			}
			switch {
			case one > zero:
				return "1"
			case zero > one:
				return "0"
			default:
				return EncodeCoin(coin.Intn(2))
			}
		}
		return d
	}
}

// EncodeCoin encodes a coin flip as a canonical boolean value.
func EncodeCoin(c int) string {
	if c == 1 {
		return "1"
	}
	return "0"
}

func sortedCopy(s []string) []string {
	c := append([]string(nil), s...)
	sort.Strings(c)
	return c
}

func majorityOfView(view map[string]string) string {
	zero, one := 0, 0
	for _, v := range view {
		switch v {
		case "1":
			one++
		default:
			zero++
		}
	}
	if one > zero {
		return "1"
	}
	return DefaultValue
}

// simpleDevice is the shared chassis for the naive devices: it gossips
// its view every round and decides via the plugged-in rule at
// decideRound.
type simpleDevice struct {
	self        string
	nbs         []string
	input       string
	kind        string
	decideRound int
	view        map[string]string // first-hand: sender -> value
	echoes      map[string]string // second-hand: "witness:subject" -> value
	decide      func(*simpleDevice) string
	decided     bool
	decision    string
}

var _ sim.Device = (*simpleDevice)(nil)
var _ sim.Fingerprinter = (*simpleDevice)(nil)

// DeviceFingerprint identifies the chassis by its kind string — which
// already encodes the variant and every constructor parameter, including
// seeds — plus the decide round. The decide closure is determined by the
// kind, so this is the full constructor identity.
func (d *simpleDevice) DeviceFingerprint() string {
	return fmt.Sprintf("byz/simple:%s@%d", d.kind, d.decideRound)
}

func (d *simpleDevice) Init(self string, neighbors []string, input sim.Input) {
	d.self = self
	d.nbs = sortedCopy(neighbors)
	d.input = boolOrDefault(string(input))
	if d.view != nil {
		d.view = map[string]string{self: d.input}
	}
	if d.echoes != nil {
		d.echoes = map[string]string{}
	}
}

func (d *simpleDevice) Step(round int, inbox sim.Inbox) sim.Outbox {
	senders := make([]string, 0, len(inbox))
	for s := range inbox {
		senders = append(senders, s)
	}
	sort.Strings(senders)
	for _, s := range senders {
		d.ingest(s, inbox[s], round)
	}
	if !d.decided && round >= d.decideRound {
		d.decided = true
		d.decision = d.decide(d)
	}
	out := sim.Outbox{}
	msg := d.message(round)
	for _, nb := range d.nbs {
		out[nb] = msg
	}
	return out
}

// message is "v" in round 0 and the canonical view afterwards.
func (d *simpleDevice) message(round int) sim.Payload {
	if round == 0 || d.view == nil {
		return sim.Payload(d.input)
	}
	keys := make([]string, 0, len(d.view))
	for k := range d.view {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + d.view[k]
	}
	return sim.Payload(strings.Join(parts, ";"))
}

func (d *simpleDevice) ingest(sender string, payload sim.Payload, round int) {
	if d.view == nil {
		return
	}
	s := string(payload)
	if !strings.Contains(s, "=") {
		// First-hand value.
		d.view[sender] = boolOrDefault(s)
		return
	}
	for _, part := range strings.Split(s, ";") {
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			continue
		}
		subject, v := part[:eq], boolOrDefault(part[eq+1:])
		if subject == sender {
			d.view[sender] = v
		} else if d.echoes != nil {
			d.echoes[sender+":"+subject] = v
		}
	}
}

func (d *simpleDevice) Snapshot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(in=%s,dec=%v:%s)", d.kind, d.input, d.decided, d.decision)
	appendMap := func(m map[string]string) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "|%s=%s", k, m[k])
		}
	}
	if d.view != nil {
		appendMap(d.view)
	}
	if d.echoes != nil {
		b.WriteString("||")
		appendMap(d.echoes)
	}
	return b.String()
}

func (d *simpleDevice) Output() (sim.Decision, bool) {
	if !d.decided {
		return sim.Decision{}, false
	}
	return sim.Decision{Value: d.decision}, true
}
