package runcache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoCachesValues(t *testing.T) {
	c := New()
	calls := 0
	compute := func() (any, error) { calls++; return "v", nil }
	for i := 0; i < 3; i++ {
		v, err := c.Do("k", compute)
		if err != nil || v != "v" {
			t.Fatalf("Do #%d = (%v, %v), want (v, nil)", i, v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 2 hits, 1 entry", st)
	}
}

func TestDoKeysAreIndependent(t *testing.T) {
	c := New()
	a, _ := c.Do("a", func() (any, error) { return 1, nil })
	b, _ := c.Do("b", func() (any, error) { return 2, nil })
	if a != 1 || b != 2 {
		t.Fatalf("Do(a)=%v Do(b)=%v, want 1 and 2", a, b)
	}
}

func TestDoErrorsAreNotCached(t *testing.T) {
	c := New()
	boom := errors.New("boom")
	calls := 0
	v, err := c.Do("k", func() (any, error) { calls++; return "partial", boom })
	if !errors.Is(err, boom) || v != "partial" {
		t.Fatalf("first Do = (%v, %v), want (partial, boom)", v, err)
	}
	// The failed flight must not be retained: the next call recomputes.
	v, err = c.Do("k", func() (any, error) { calls++; return "good", nil })
	if err != nil || v != "good" {
		t.Fatalf("second Do = (%v, %v), want (good, nil)", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (errors retried)", calls)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (only the successful flight retained)", st.Entries)
	}
}

func TestDoPanicsAreNotCached(t *testing.T) {
	c := New()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Do swallowed the compute panic")
			}
		}()
		c.Do("k", func() (any, error) { panic("kaboom") })
	}()
	v, err := c.Do("k", func() (any, error) { return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("Do after panic = (%v, %v), want (ok, nil)", v, err)
	}
}

// TestDoSingleFlight hammers one key from many goroutines and demands
// exactly one computation; run under -race this is also the publication
// safety check for the done-channel handoff.
func TestDoSingleFlight(t *testing.T) {
	c := New()
	var calls atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	results := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do("k", func() (any, error) {
				calls.Add(1)
				<-release // hold the flight open so everyone piles up
				return "shared", nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", n)
	}
	for i, v := range results {
		if v != "shared" {
			t.Fatalf("waiter %d got %v, want shared", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != waiters-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits", st, waiters-1)
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Do("k", func() (any, error) { return 1, nil })
	c.Reset()
	if st := c.Stats(); st.Entries != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("stats after Reset = %+v, want zeroes", st)
	}
	calls := 0
	c.Do("k", func() (any, error) { calls++; return 1, nil })
	if calls != 1 {
		t.Fatal("Reset did not drop the entry")
	}
}

func TestSetEnabled(t *testing.T) {
	restore := SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled() = true after SetEnabled(false)")
	}
	inner := SetEnabled(true)
	if !Enabled() {
		t.Fatal("Enabled() = false after SetEnabled(true)")
	}
	inner()
	if Enabled() {
		t.Fatal("restore did not reinstate the outer override")
	}
	restore()
}

func TestHasherFieldBoundaries(t *testing.T) {
	// "ab"+"c" and "a"+"bc" must hash differently: fields are
	// length-delimited, not concatenated.
	h1 := NewHasher("t")
	h1.Field("ab")
	h1.Field("c")
	h2 := NewHasher("t")
	h2.Field("a")
	h2.Field("bc")
	if h1.Sum() == h2.Sum() {
		t.Fatal("field boundaries are not part of the hash")
	}
	h3 := NewHasher("t")
	h3.Field("ab")
	h3.Field("c")
	if h1.Sum() != h3.Sum() {
		t.Fatal("identical field sequences hash differently")
	}
}
